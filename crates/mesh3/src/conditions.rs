//! Sufficient conditions for minimal routing in 3-D meshes.
//!
//! The 2-D sufficient safe condition ("both axis sections clear") does
//! **not** generalize verbatim: in 3-D, clear axes do not by themselves
//! guarantee a minimal path, because obstacles can seal the interior of
//! the source–destination box without touching any axis. Two conditions
//! are provided:
//!
//! * [`all_axes_clear`] — the naive generalization, exposed as a cheap
//!   *heuristic* (its gap to the oracle is measured by the tests),
//! * [`layered_safe`] — a provably sound condition in the spirit of the
//!   paper's extension 2: climb one clear axis to the destination's layer,
//!   then apply the 2-D Theorem 1 inside that layer, where the obstacle
//!   cuboids cross-sect into disjoint rectangles. Soundness additionally
//!   requires the cross-sections to be free of diagonal contact (which
//!   2-D Definition 1 guarantees for genuine 2-D blocks but bounding
//!   cuboids of 3-D components may violate); the condition checks this
//!   structurally and declines such layers.

use serde::{Deserialize, Serialize};

use emr_mesh::Dist;

use crate::block::Scenario3;
use crate::geometry::{Axis3, Coord3, Dir3};

/// The witness of a [`layered_safe`] guarantee: climb `axis` from the
/// source to the destination's coordinate, then route 2-D inside that
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayeredPlan {
    /// The axis climbed first.
    pub axis: Axis3,
    /// The layer-entry node (source with the climbed coordinate replaced).
    pub waypoint: Coord3,
}

/// The naive generalization of Definition 3: every axis section toward the
/// destination is clear past the destination's offset.
///
/// In 2-D this is sufficient (Theorem 1); in 3-D it is **not** — treat it
/// as a fast heuristic. Returns `false` for blocked endpoints.
pub fn all_axes_clear(sc: &Scenario3, s: Coord3, d: Coord3) -> bool {
    if sc.blocks().is_blocked(s) || sc.blocks().is_blocked(d) {
        return false;
    }
    Axis3::ALL.iter().all(|&axis| axis_clear(sc, s, d, axis))
}

fn axis_clear(sc: &Scenario3, s: Coord3, d: Coord3, axis: Axis3) -> bool {
    let delta = d.along(axis) - s.along(axis);
    if delta == 0 {
        return true;
    }
    let dir = Dir3 {
        axis,
        sign: delta.signum(),
    };
    (delta.unsigned_abs() as Dist) < sc.safety().level(s).toward(dir)
}

/// The layered sufficient condition: there is an axis whose section from
/// the source is clear all the way to the destination's coordinate, and at
/// the layer-entry waypoint the remaining 2-D problem satisfies Theorem 1
/// (both in-layer sections clear) with structurally well-behaved layer
/// obstacles. Guarantees a minimal path (property-tested against the
/// oracle).
///
/// # Examples
///
/// ```
/// use emr_mesh3::{conditions, Coord3, FaultSet3, Mesh3, Scenario3};
///
/// let mesh = Mesh3::cube(10);
/// let faults = FaultSet3::from_coords(mesh, [Coord3::new(4, 4, 2)]);
/// let sc = Scenario3::build(faults);
/// let plan = conditions::layered_safe(&sc, Coord3::ORIGIN, Coord3::new(8, 8, 8));
/// assert!(plan.is_some());
/// ```
pub fn layered_safe(sc: &Scenario3, s: Coord3, d: Coord3) -> Option<LayeredPlan> {
    if sc.blocks().is_blocked(s) || sc.blocks().is_blocked(d) {
        return None;
    }
    for axis in Axis3::ALL {
        if !axis_clear(sc, s, d, axis) {
            continue;
        }
        let waypoint = s.with_along(axis, d.along(axis));
        if sc.blocks().is_blocked(waypoint) {
            continue;
        }
        let [b, c] = axis.others();
        if !axis_clear(sc, waypoint, d, b) || !axis_clear(sc, waypoint, d, c) {
            continue;
        }
        if layer_has_diagonal_contact(sc, axis, d.along(axis)) {
            // The 2-D theorem's preconditions fail in this layer; try
            // another axis rather than risk an unsound guarantee.
            continue;
        }
        return Some(LayeredPlan { axis, waypoint });
    }
    None
}

/// Whether two obstacle cross-sections in the layer `axis = level` touch
/// diagonally (gap of exactly one in both in-layer dimensions) — the
/// configuration 2-D Definition 1 rules out but bounding cuboids may
/// exhibit.
fn layer_has_diagonal_contact(sc: &Scenario3, axis: Axis3, level: i32) -> bool {
    let [b, c] = axis.others();
    let sections: Vec<(i32, i32, i32, i32)> = sc
        .blocks()
        .cuboids()
        .iter()
        .filter(|q| (q.min().along(axis)..=q.max().along(axis)).contains(&level))
        .map(|q| {
            (
                q.min().along(b),
                q.max().along(b),
                q.min().along(c),
                q.max().along(c),
            )
        })
        .collect();
    sections_have_diagonal_contact(&sections)
}

/// Pure form of the diagonal-contact test over `(b_min, b_max, c_min,
/// c_max)` rectangles: true when two rectangles are exactly one node apart
/// in **both** in-layer dimensions (corner-to-corner contact). In practice
/// the 3-D labeling appears to rule this out (components fill their
/// bounding boxes — see the property tests), so the check is defensive.
fn sections_have_diagonal_contact(sections: &[(i32, i32, i32, i32)]) -> bool {
    for (i, &(b0, b1, c0, c1)) in sections.iter().enumerate() {
        for &(e0, e1, f0, f1) in &sections[i + 1..] {
            let empty_b = (e0 - b1).max(b0 - e1) - 1; // empty lanes between
            let empty_c = (f0 - c1).max(c0 - f1) - 1;
            if empty_b == 0 && empty_c == 0 {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::FaultSet3;
    use crate::geometry::Mesh3;
    use crate::reach;

    fn scenario(mesh: Mesh3, coords: &[(i32, i32, i32)]) -> Scenario3 {
        Scenario3::build(FaultSet3::from_coords(
            mesh,
            coords.iter().map(|&(x, y, z)| Coord3::new(x, y, z)),
        ))
    }

    #[test]
    fn clear_cube_is_safe_everywhere() {
        let mesh = Mesh3::cube(6);
        let sc = scenario(mesh, &[]);
        let s = mesh.center();
        for d in mesh.nodes() {
            assert!(all_axes_clear(&sc, s, d));
            assert!(layered_safe(&sc, s, d).is_some(), "{d}");
        }
    }

    #[test]
    fn blocked_axis_fails_both() {
        let mesh = Mesh3::cube(8);
        // Fault on every axis section of the source toward (7,7,7).
        let sc = scenario(mesh, &[(3, 0, 0), (0, 3, 0), (0, 0, 3)]);
        let s = Coord3::ORIGIN;
        let d = Coord3::new(7, 7, 7);
        assert!(!all_axes_clear(&sc, s, d));
        assert!(layered_safe(&sc, s, d).is_none());
    }

    #[test]
    fn layered_picks_a_clear_axis() {
        let mesh = Mesh3::cube(10);
        // x and y sections blocked, z clear; the z = 8 layer is clear at
        // the waypoint.
        let sc = scenario(mesh, &[(4, 0, 0), (0, 4, 0)]);
        let s = Coord3::ORIGIN;
        let d = Coord3::new(8, 8, 8);
        assert!(!all_axes_clear(&sc, s, d));
        let plan = layered_safe(&sc, s, d).expect("z layer works");
        assert_eq!(plan.axis, Axis3::Z);
        assert_eq!(plan.waypoint, Coord3::new(0, 0, 8));
    }

    #[test]
    fn layered_guarantee_is_sound_randomly() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mesh = Mesh3::cube(10);
        let s = mesh.center();
        let mut ensured = 0u32;
        for seed in 0..150u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let faults = crate::inject::uniform(mesh, 14, &[s], &mut rng);
            let sc = Scenario3::build(faults);
            if sc.blocks().is_blocked(s) {
                continue;
            }
            for d in [
                Coord3::new(9, 9, 9),
                Coord3::new(0, 9, 5),
                Coord3::new(9, 0, 0),
                Coord3::new(2, 3, 9),
            ] {
                if sc.blocks().is_blocked(d) {
                    continue;
                }
                if layered_safe(&sc, s, d).is_some() {
                    ensured += 1;
                    assert!(
                        reach::minimal_path_exists(&mesh, s, d, |c| sc.blocks().is_blocked(c)),
                        "seed {seed}: layered_safe ensured but no path to {d}"
                    );
                }
            }
        }
        assert!(ensured > 100, "only {ensured} ensured cases exercised");
    }

    #[test]
    fn layered_implies_naive() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mesh = Mesh3::cube(9);
        let s = Coord3::new(1, 1, 1);
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(900 + seed);
            let faults = crate::inject::uniform(mesh, 10, &[s], &mut rng);
            let sc = Scenario3::build(faults);
            for d in [Coord3::new(8, 8, 8), Coord3::new(8, 2, 7)] {
                if layered_safe(&sc, s, d).is_some() {
                    // The climbed axis is clear from the source and the
                    // waypoint shares the source's other coordinates, so
                    // the naive condition can still fail only on the other
                    // axes *at the source*; verify the expected relation:
                    // layered does NOT imply naive in general, but both
                    // must imply endpoint usability.
                    assert!(!sc.blocks().is_blocked(s) && !sc.blocks().is_blocked(d));
                }
            }
        }
    }

    #[test]
    fn diagonal_contact_detection() {
        // Corner-to-corner rectangles: [1..2]×[4..5] and [3..4]×[2..3]
        // touch diagonally (zero empty lanes in both dimensions).
        assert!(sections_have_diagonal_contact(&[
            (1, 2, 4, 5),
            (3, 4, 2, 3)
        ]));
        // One empty lane in x: no contact.
        assert!(!sections_have_diagonal_contact(&[
            (1, 2, 4, 5),
            (4, 5, 2, 3)
        ]));
        // Overlap in one dimension with a one-lane gap in the other is the
        // legal 2-D corridor configuration, not diagonal contact.
        assert!(!sections_have_diagonal_contact(&[
            (1, 4, 4, 5),
            (2, 5, 1, 2)
        ]));
        // Separated plates never register, and real scenarios expose the
        // layer-level wrapper.
        let mesh = Mesh3::new(10, 10, 4);
        let sc = scenario(mesh, &[(1, 4, 1), (5, 1, 1)]);
        assert!(!layer_has_diagonal_contact(&sc, Axis3::Z, 1));
        assert!(!layer_has_diagonal_contact(&sc, Axis3::Z, 3));
    }

    /// Empirical 3-D analog of the 2-D rectangle invariant: connected
    /// faulty∪disabled components fill their bounding cuboids, so bounding
    /// cuboids never exhibit diagonal contact in any layer.
    #[test]
    fn components_fill_bounding_cuboids_randomly() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mesh = Mesh3::cube(8);
        for seed in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let faults = crate::inject::uniform(mesh, 20, &[], &mut rng);
            let sc = Scenario3::build(faults);
            let blocks = sc.blocks();
            let covered: usize = blocks.cuboids().iter().map(|q| q.node_count()).sum();
            let in_components = blocks.faulty_count() + blocks.disabled_count();
            assert_eq!(
                blocks.overapproximated_nodes(),
                covered - in_components,
                "seed {seed}"
            );
            // The strong claim: zero over-approximation.
            assert_eq!(blocks.overapproximated_nodes(), 0, "seed {seed}");
        }
    }

    #[test]
    fn endpoints_inside_obstacles_fail() {
        let mesh = Mesh3::cube(5);
        let sc = scenario(mesh, &[(2, 2, 2)]);
        assert!(!all_axes_clear(&sc, Coord3::new(2, 2, 2), Coord3::ORIGIN));
        assert!(layered_safe(&sc, Coord3::ORIGIN, Coord3::new(2, 2, 2)).is_none());
    }
}
