//! The layered 3-D router: realize a [`crate::conditions::layered_safe`]
//! guarantee as an actual minimal path.
//!
//! Phase 1 climbs the plan's clear axis from the source to the
//! destination's layer; phase 2 runs the full 2-D machinery — Wu's
//! protocol with boundary information — *inside* that layer, whose
//! obstacle cross-sections are disjoint rectangles. This is literally
//! "apply Theorem 1 in the layer": the 2-D crates are reused unchanged on
//! the projected problem.

use std::fmt;

use emr_core::{route as route2, Model, Scenario};
use emr_fault::FaultSet;
use emr_mesh::{Coord, Mesh};

use crate::block::Scenario3;
use crate::conditions::{layered_safe, LayeredPlan};
use crate::geometry::{Axis3, Coord3, Dir3};

/// Why a 3-D route attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route3Error {
    /// The layered sufficient condition does not hold for this pair — the
    /// router has no guarantee to realize.
    NotEnsured,
    /// The in-layer 2-D phase failed (impossible for ensured pairs; kept
    /// for diagnostics).
    LayerPhase(route2::RouteError),
}

impl fmt::Display for Route3Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Route3Error::NotEnsured => write!(f, "layered safe condition does not hold"),
            Route3Error::LayerPhase(e) => write!(f, "in-layer phase failed: {e}"),
        }
    }
}

impl std::error::Error for Route3Error {}

/// Routes `s → d` by climbing the plan's axis and then running the 2-D
/// protocol in the destination's layer. The result is minimal, avoids
/// every obstacle cuboid, and exists whenever [`layered_safe`] ensures it
/// (property-tested).
///
/// # Errors
///
/// [`Route3Error::NotEnsured`] when the layered condition fails.
///
/// # Examples
///
/// ```
/// use emr_mesh3::{route, Coord3, FaultSet3, Mesh3, Scenario3};
///
/// let mesh = Mesh3::cube(10);
/// let sc = Scenario3::build(FaultSet3::from_coords(mesh, [Coord3::new(4, 4, 2)]));
/// let path = route::layered_route(&sc, Coord3::ORIGIN, Coord3::new(8, 8, 8)).unwrap();
/// assert_eq!(path.len() as u32, 25); // Manhattan 24 + 1 nodes
/// ```
pub fn layered_route(sc: &Scenario3, s: Coord3, d: Coord3) -> Result<Vec<Coord3>, Route3Error> {
    let plan = layered_safe(sc, s, d).ok_or(Route3Error::NotEnsured)?;
    let mut path = axis_leg(s, plan.waypoint, plan.axis);
    let layer = layer_route(sc, &plan, d)?;
    path.extend(layer.into_iter().skip(1));
    Ok(path)
}

/// The straight climb from `s` to the waypoint along `axis`.
fn axis_leg(s: Coord3, waypoint: Coord3, axis: Axis3) -> Vec<Coord3> {
    let delta = waypoint.along(axis) - s.along(axis);
    let dir = Dir3 {
        axis,
        sign: if delta >= 0 { 1 } else { -1 },
    };
    let mut path = vec![s];
    let mut cur = s;
    for _ in 0..delta.unsigned_abs() {
        cur = cur.step(dir);
        path.push(cur);
    }
    path
}

/// Phase 2: project the layer onto a 2-D scenario and run Wu's protocol.
fn layer_route(sc: &Scenario3, plan: &LayeredPlan, d: Coord3) -> Result<Vec<Coord3>, Route3Error> {
    let axis = plan.axis;
    let level = d.along(axis);
    let [b, c] = axis.others();
    let mesh3 = sc.mesh();
    let mesh2 = Mesh::new(mesh3.extent(b), mesh3.extent(c));
    let to3 = |p: Coord| -> Coord3 {
        Coord3::ORIGIN
            .with_along(axis, level)
            .with_along(b, p.x)
            .with_along(c, p.y)
    };
    // The layer's obstacle cross-sections as 2-D faults. Because the plan
    // passed the diagonal-contact check, Definition 1 re-labeling adds no
    // nodes and reproduces exactly these rectangles as its blocks.
    let faults2 = FaultSet::from_coords(
        mesh2,
        mesh2.nodes().filter(|&p| sc.blocks().is_blocked(to3(p))),
    );
    let sc2 = Scenario::build(faults2);
    let view = sc2.view(Model::FaultBlock);
    let boundary = sc2.boundary_map(Model::FaultBlock);
    let s2 = Coord::new(plan.waypoint.along(b), plan.waypoint.along(c));
    let d2 = Coord::new(d.along(b), d.along(c));
    let path2 = route2::wu_route(&view, &boundary, s2, d2).map_err(Route3Error::LayerPhase)?;
    Ok(path2.nodes().iter().map(|&p| to3(p)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::FaultSet3;
    use crate::geometry::Mesh3;
    use crate::{inject, reach};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn valid_path(sc: &Scenario3, s: Coord3, d: Coord3, path: &[Coord3]) {
        assert_eq!(path.first(), Some(&s));
        assert_eq!(path.last(), Some(&d));
        assert_eq!(path.len() as u32, s.manhattan(d) + 1, "not minimal");
        assert!(path.windows(2).all(|w| w[0].manhattan(w[1]) == 1));
        assert!(
            path.iter().all(|&n| !sc.blocks().is_blocked(n)),
            "path enters an obstacle"
        );
    }

    #[test]
    fn clear_cube_routes_everywhere() {
        let mesh = Mesh3::cube(6);
        let sc = Scenario3::build(FaultSet3::new(mesh));
        let s = mesh.center();
        for d in mesh.nodes() {
            let path = layered_route(&sc, s, d).expect("clear cube");
            valid_path(&sc, s, d, &path);
        }
    }

    #[test]
    fn routes_around_a_plate() {
        let mesh = Mesh3::cube(10);
        // A plate blocking the middle of the cube.
        let plate: Vec<Coord3> = (3..=6)
            .flat_map(|x| (3..=6).map(move |y| Coord3::new(x, y, 5)))
            .collect();
        let sc = Scenario3::build(FaultSet3::from_coords(mesh, plate));
        let s = Coord3::new(1, 1, 1);
        let d = Coord3::new(8, 8, 8);
        let path = layered_route(&sc, s, d).expect("route exists");
        valid_path(&sc, s, d, &path);
    }

    #[test]
    fn not_ensured_is_reported() {
        let mesh = Mesh3::cube(8);
        let sc = Scenario3::build(FaultSet3::from_coords(
            mesh,
            [
                Coord3::new(3, 0, 0),
                Coord3::new(0, 3, 0),
                Coord3::new(0, 0, 3),
            ],
        ));
        assert_eq!(
            layered_route(&sc, Coord3::ORIGIN, Coord3::new(7, 7, 7)),
            Err(Route3Error::NotEnsured)
        );
    }

    /// The big soundness sweep: whenever the condition ensures, the router
    /// delivers a valid minimal path — and the oracle agrees one exists.
    #[test]
    fn ensured_routes_always_succeed_randomly() {
        let mesh = Mesh3::cube(10);
        let s = mesh.center();
        let mut routed = 0u32;
        for seed in 0..120u64 {
            let mut rng = StdRng::seed_from_u64(3_000 + seed);
            let faults = inject::uniform(mesh, 16, &[s], &mut rng);
            let sc = Scenario3::build(faults);
            if sc.blocks().is_blocked(s) {
                continue;
            }
            for d in [
                Coord3::new(9, 9, 9),
                Coord3::new(0, 0, 0),
                Coord3::new(9, 0, 9),
                Coord3::new(2, 9, 3),
            ] {
                if sc.blocks().is_blocked(d) {
                    continue;
                }
                match layered_route(&sc, s, d) {
                    Ok(path) => {
                        valid_path(&sc, s, d, &path);
                        assert!(reach::minimal_path_exists(&mesh, s, d, |c| sc
                            .blocks()
                            .is_blocked(c)));
                        routed += 1;
                    }
                    Err(Route3Error::NotEnsured) => {}
                    Err(e) => panic!("seed {seed}: ensured route failed: {e}"),
                }
            }
        }
        assert!(routed > 250, "only {routed} ensured routes exercised");
    }
}
