//! Offline stand-in for `serde_json`: JSON text over the vendored
//! [`serde::Value`] tree model. Supports everything the workspace
//! round-trips — objects, arrays, strings, numbers, booleans, null.

use serde::{Error, Serialize, Value};
use std::fmt::Write as _;

/// Serializes a value to its compact JSON representation.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

/// Serializes a value to human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.serialize(), 0);
    Ok(out)
}

/// Parses JSON text and deserializes the result.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Writer

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) {
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_json_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_nan() || f.is_infinite() {
        out.push_str("null"); // JSON has no non-finite numbers.
    } else if f == f.trunc() && f.abs() < 1e15 {
        let _ = write!(out, "{f:.1}");
    } else {
        let _ = write!(out, "{f}");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent over chars)

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::custom("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("expected number at byte {start}")));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i32).unwrap(), "42");
        assert_eq!(from_str::<i32>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);

        let opt: Option<String> = Some("hi \"there\"\n".to_string());
        let json = to_string(&opt).unwrap();
        assert_eq!(from_str::<Option<String>>(&json).unwrap(), opt);

        let none: Option<i32> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<i32>>("null").unwrap(), None);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let v: Vec<Vec<i32>> = from_str(" [ [1, 2] , [ ] , [3] ] ").unwrap();
        assert_eq!(v, vec![vec![1, 2], vec![], vec![3]]);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }
}
