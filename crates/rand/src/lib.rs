//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of the `rand 0.8` API it actually uses: [`RngCore`],
//! [`Rng`] (`gen_range`/`gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], [`rngs::mock::StepRng`], [`seq::SliceRandom`] and
//! [`thread_rng`]. Everything is deterministic: `StdRng` is an
//! xoshiro256++ generator seeded through SplitMix64 (the same seeding
//! scheme `rand` documents for `seed_from_u64`). Streams differ from the
//! upstream crate's ChaCha-based `StdRng`, which only matters for pinned
//! golden values — all of the repository's goldens were produced with this
//! implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`]
/// (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        // 53 uniform mantissa bits, the standard [0, 1) construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (also the mixer `seed_from_u64`
/// uses to spread a 64-bit seed over a full generator state).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                let mut sm = 0xDEAD_BEEF_u64;
                for word in &mut s {
                    *word = splitmix64(&mut sm);
                }
            }
            StdRng { s }
        }
    }

    pub mod mock {
        //! Deterministic test generators.

        use super::super::RngCore;

        /// A generator returning `initial`, `initial + increment`, … —
        /// only for tests that need a predictable sequence.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the generator.
            pub fn new(initial: u64, increment: u64) -> StepRng {
                StepRng {
                    value: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.increment);
                v
            }
        }
    }

    /// See [`super::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A convenience generator for examples and doc tests. Unlike upstream
/// `rand`, this one is *deterministic per process* (seeded from a process
/// counter) — good enough for the workspace's usage, which never relies on
/// cross-process entropy.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5EED_2EAD);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(n))
}

pub mod distributions {
    //! Sampling support types.

    pub mod uniform {
        //! Uniform range sampling.

        use super::super::RngCore;

        /// Ranges that can produce a uniform sample.
        pub trait SampleRange<T> {
            /// Draws one sample.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "empty range");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = rng.next_u64() as u128 % span;
                        (self.start as i128 + v as i128) as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = rng.next_u64() as u128 % span;
                        (lo as i128 + v as i128) as $t
                    }
                }
            )*};
        }

        impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + unit * (self.end - self.start)
            }
        }
    }
}

pub mod seq {
    //! Sequence-related sampling.

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// `amount` distinct elements, uniformly without replacement, in
        /// selection order.
        ///
        /// # Panics
        ///
        /// Panics if `amount` exceeds the slice length.
        fn choose_multiple<R>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&Self::Item>
        where
            R: RngCore + ?Sized;

        /// One uniformly chosen element, or `None` when empty.
        fn choose<R>(&self, rng: &mut R) -> Option<&Self::Item>
        where
            R: RngCore + ?Sized;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: RngCore + ?Sized;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T>
        where
            R: RngCore + ?Sized,
        {
            assert!(
                amount <= self.len(),
                "cannot choose {amount} from {}",
                self.len()
            );
            // Partial Fisher–Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            let mut picked = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = i + (rng.next_u64() as usize) % (idx.len() - i);
                idx.swap(i, j);
                picked.push(&self[idx[i]]);
            }
            picked.into_iter()
        }

        fn choose<R>(&self, rng: &mut R) -> Option<&T>
        where
            R: RngCore + ?Sized,
        {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() as usize) % self.len()])
            }
        }

        fn shuffle<R>(&mut self, rng: &mut R)
        where
            R: RngCore + ?Sized,
        {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() as usize) % (i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let w = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&w));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_multiple_is_distinct_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let items: Vec<u32> = (0..50).collect();
        let mut got: Vec<u32> = items.choose_multiple(&mut rng, 20).copied().collect();
        assert_eq!(got.len(), 20);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), 20, "choose_multiple repeated an element");
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(0, 1);
        assert_eq!(rng.next_u64(), 0);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u64(), 2);
    }

    #[test]
    fn dyn_rng_core_supports_gen_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let dynr: &mut dyn RngCore = &mut rng;
        let v = dynr.gen_range(0i32..10);
        assert!((0..10).contains(&v));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
