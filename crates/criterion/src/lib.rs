//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros —
//! with a simple wall-clock measurement loop instead of criterion's
//! statistical machinery. Each benchmark prints one `name ... time/iter`
//! line to stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier. Stable Rust's `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one parameterized benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.full)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    /// Mean wall-clock time per iteration of the last `iter` call.
    per_iter: Duration,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm up and estimate the per-call cost with a single invocation.
        let probe = Instant::now();
        black_box(routine());
        let probe_cost = probe.elapsed().max(Duration::from_nanos(1));

        // Pick an iteration count that roughly fills the measurement window.
        let target = self.measurement_time;
        let iters = (target.as_nanos() / probe_cost.as_nanos()).clamp(1, 1_000_000) as u64;

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.per_iter = start.elapsed() / iters as u32;
    }
}

/// Top-level harness handle, passed to each `criterion_group!` target.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(200),
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        let name = name.into();
        self.run_one(&name, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut best = Duration::MAX;
        // A handful of samples; report the fastest (least-noise) one.
        let samples = self.sample_size.clamp(1, 20);
        for _ in 0..samples {
            let mut b = Bencher {
                per_iter: Duration::ZERO,
                measurement_time: self.measurement_time / samples as u32,
            };
            f(&mut b);
            if b.per_iter > Duration::ZERO && b.per_iter < best {
                best = b.per_iter;
            }
        }
        if best == Duration::MAX {
            best = Duration::ZERO;
        }
        println!("bench: {name:<50} {:>12.1?}/iter", best);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3i32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        group.finish();
    }
}
