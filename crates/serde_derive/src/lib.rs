//! Derive macros for the vendored `serde` stand-in.
//!
//! Implemented directly over `proc_macro::TokenTree` (the build
//! environment has no `syn`/`quote`). Supports the shapes this workspace
//! actually derives: structs with named fields, tuple structs, and enums
//! with unit or tuple variants — optionally with plain type parameters.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed skeleton of a `struct`/`enum` definition.
struct Item {
    name: String,
    /// Plain type-parameter names (the workspace derives nothing with
    /// lifetimes or const generics).
    generics: Vec<String>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// Tuple-payload arity; `0` for unit variants.
    arity: usize,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated code parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated code parses")
}

// ---------------------------------------------------------------------------
// Parsing

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = expect_ident(&mut tokens);
    let name = expect_ident(&mut tokens);
    let generics = parse_generics(&mut tokens);
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                generics,
                kind: Kind::NamedStruct(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item {
                name,
                generics,
                kind: Kind::TupleStruct(count_top_level_items(g.stream())),
            },
            other => panic!("unsupported struct body: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                generics,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            other => panic!("unsupported enum body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}`"),
    }
}

type Tokens = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attributes and `pub`/`pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &mut Tokens) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &mut Tokens) -> String {
    match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `<T, U>` (plain type parameters only), leaving the iterator past
/// the closing `>`. Returns an empty list when no generics follow.
fn parse_generics(tokens: &mut Tokens) -> Vec<String> {
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    tokens.next();
    let mut params = Vec::new();
    let mut depth = 1i32;
    let mut at_param_start = true;
    for tok in tokens.by_ref() {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => at_param_start = true,
            TokenTree::Ident(i) if depth == 1 && at_param_start => {
                params.push(i.to_string());
                at_param_start = false;
            }
            _ => {}
        }
    }
    params
}

/// Field names of a named-field body, skipping types entirely.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        fields.push(name.to_string());
        // Consume `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Number of comma-separated items at the top level of a token stream.
fn count_top_level_items(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0i32;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    count + usize::from(saw_tokens)
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = tokens.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = count_top_level_items(g.stream());
                    tokens.next();
                }
                Delimiter::Brace => panic!(
                    "struct-style enum variant `{name}` is not supported by the vendored derive"
                ),
                _ => {}
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            arity,
        });
        // Skip to the next variant (past discriminants and the comma).
        for tok in tokens.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation

/// `impl<T: ::serde::Serialize> ... for Name<T>` header pieces.
fn impl_header(item: &Item, bound: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let params: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", item.name, item.generics.join(", ")),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (impl_generics, ty) = impl_header(item, "::serde::Serialize");
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push(({f:?}.to_string(), \
                         ::serde::Serialize::serialize(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}::serde::Value::Map(entries)"
            )
        }
        Kind::TupleStruct(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            if *arity == 1 {
                items[0].clone()
            } else {
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            }
        }
        Kind::Enum(variants) => {
            let name = &item.name;
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match v.arity {
                        0 => format!("{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"),
                        1 => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::serialize(f0))]),\n"
                        ),
                        n => {
                            let binders: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Seq(vec![{}]))]),\n",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {ty} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (impl_generics, ty) = impl_header(item, "::serde::Deserialize");
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(\
                         ::serde::get_field(entries, {f:?})?)?,\n"
                    )
                })
                .collect();
            format!(
                "let entries = value.as_map().ok_or_else(|| \
                 ::serde::Error::custom(concat!(\"expected map for \", {name:?})))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Kind::TupleStruct(arity) => {
            if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::deserialize(value)?))")
            } else {
                let inits: Vec<String> = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::deserialize(seq.get({i}).ok_or_else(|| \
                             ::serde::Error::custom(\"sequence too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "let seq = value.as_seq().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected sequence for \", {name:?})))?;\n\
                     Ok({name}({}))",
                    inits.join(", ")
                )
            }
        }
        Kind::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.arity == 0)
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => return Ok({name}::{vn}),\n")
                })
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|v| v.arity > 0)
                .map(|v| {
                    let vn = &v.name;
                    if v.arity == 1 {
                        format!(
                            "{vn:?} => return Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(payload)?)),\n"
                        )
                    } else {
                        let inits: Vec<String> = (0..v.arity)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::deserialize(seq.get({i}).ok_or_else(|| \
                                     ::serde::Error::custom(\"variant payload too short\"))?)?"
                                )
                            })
                            .collect();
                        format!(
                            "{vn:?} => {{\nlet seq = payload.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected sequence payload\"))?;\n\
                             return Ok({name}::{vn}({}));\n}}\n",
                            inits.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "if let Some(tag) = value.as_str() {{\n\
                     match tag {{\n{unit_arms}_ => {{}}\n}}\n\
                 }}\n\
                 if let Some(entries) = value.as_map() {{\n\
                     if let [(tag, payload)] = entries {{\n\
                         match tag.as_str() {{\n{payload_arms}_ => {{}}\n}}\n\
                     }}\n\
                 }}\n\
                 Err(::serde::Error::custom(concat!(\"unrecognized variant for \", {name:?})))"
            )
        }
    };
    format!(
        "impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
             fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}
