//! Wang's necessary-and-sufficient condition for minimal-path existence.
//!
//! A minimal route from `s` to `d` exists **iff** no sequence of blocks
//! *covers* `s` and `d` on `x` and none covers them on `y` (Wang, cited in
//! §2 of the paper). This is the global-information baseline: evaluating
//! it requires knowing every block in the mesh, which is exactly what the
//! paper's limited-information conditions avoid.
//!
//! Blocks are given as rectangles in absolute coordinates; the condition is
//! evaluated in the normalized frame (destination in quadrant I of the
//! source). With the rectangular faulty-block model this is property-tested
//! equivalent to the [`crate::reach`] oracle.

use emr_mesh::{Coord, Frame, Rect};

/// Whether a sequence of blocks covers `s` and `d` on **y** (a staircase
/// barrier from the source's column to the destination's column that no
/// monotone path can cross).
///
/// In the normalized frame with `s` at the origin and `d = (xd, yd)`,
/// a sequence `1..k` covers on y when
/// * block `i+1` covers block `i` on y: `y(i+1)_min > y(i)_max` and
///   `x(i+1)_min ≤ x(i)_max + 1`,
/// * block 1 straddles the source column (`x(1)_min ≤ 0`) above the source
///   (`y(1)_min ≥ 1`), and
/// * block k reaches the destination column (`x(k)_max ≥ xd`) below the
///   destination (`y(k)_max < yd`).
///
/// This is the paper's condition with two precise adjustments derived from
/// the barrier argument (and property-tested equivalent to the
/// [`crate::reach`] oracle over model-generated blocks): the covering link
/// uses `x(i+1)_min ≤ x(i)_max + 1` — a block starting exactly one column
/// east of the previous block's edge still bars the squeeze-through column —
/// and the terminal block only needs `x(k)_max ≥ xd` (a terminal block with
/// `x(k)_min > xd` implies the previous block already terminated a barrier).
pub fn covers_on_y(blocks: &[Rect], s: Coord, d: Coord) -> bool {
    let frame = Frame::normalizing(s, d);
    let rel: Vec<Rect> = blocks.iter().map(|b| frame.rect_to_rel(b)).collect();
    let rd = frame.to_rel(d);
    covers_on_y_rel(&rel, rd)
}

/// Whether a sequence of blocks covers `s` and `d` on **x** (the symmetric
/// condition with the roles of x and y exchanged).
pub fn covers_on_x(blocks: &[Rect], s: Coord, d: Coord) -> bool {
    let frame = Frame::normalizing(s, d);
    // Exchange the roles of x and y by transposing every rectangle and the
    // destination, then reuse the y-covering search.
    let rel: Vec<Rect> = blocks
        .iter()
        .map(|b| transpose(frame.rect_to_rel(b)))
        .collect();
    let rd = frame.to_rel(d);
    covers_on_y_rel(&rel, Coord::new(rd.y, rd.x))
}

/// Wang's condition: a minimal route from `s` to `d` exists iff no covering
/// sequence exists on either axis.
///
/// The caller is responsible for `s` and `d` lying outside every block
/// (the paper's standing assumption for sources and destinations).
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Rect};
/// use emr_fault::coverage::minimal_path_exists_by_coverage;
///
/// // A single block strictly between s and d never covers them.
/// let blocks = [Rect::new(2, 3, 2, 3)];
/// assert!(minimal_path_exists_by_coverage(
///     &blocks,
///     Coord::new(0, 0),
///     Coord::new(6, 6)
/// ));
/// // A wide wall straddling both columns does.
/// let wall = [Rect::new(-2, 8, 2, 3)];
/// assert!(!minimal_path_exists_by_coverage(
///     &wall,
///     Coord::new(0, 0),
///     Coord::new(6, 6)
/// ));
/// ```
pub fn minimal_path_exists_by_coverage(blocks: &[Rect], s: Coord, d: Coord) -> bool {
    !covers_on_y(blocks, s, d) && !covers_on_x(blocks, s, d)
}

fn transpose(r: Rect) -> Rect {
    Rect::new(r.y_min(), r.y_max(), r.x_min(), r.x_max())
}

/// DFS over the "covers on y" relation in the normalized frame.
fn covers_on_y_rel(blocks: &[Rect], d: Coord) -> bool {
    // Start blocks: straddle column 0 above the source.
    // Accept blocks: straddle column xd below the destination.
    let starts = |b: &Rect| b.x_min() <= 0 && b.y_min() > 0;
    let accepts = |b: &Rect| b.x_max() >= d.x && b.y_max() < d.y;
    let covers =
        |next: &Rect, prev: &Rect| next.y_min() > prev.y_max() && next.x_min() <= prev.x_max() + 1;

    let mut stack: Vec<usize> = (0..blocks.len()).filter(|&i| starts(&blocks[i])).collect();
    let mut visited = vec![false; blocks.len()];
    for &i in &stack {
        visited[i] = true;
    }
    while let Some(i) = stack.pop() {
        if accepts(&blocks[i]) {
            return true;
        }
        for j in 0..blocks.len() {
            if !visited[j] && covers(&blocks[j], &blocks[i]) {
                visited[j] = true;
                stack.push(j);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_block_list_never_covers() {
        assert!(minimal_path_exists_by_coverage(
            &[],
            Coord::ORIGIN,
            Coord::new(5, 5)
        ));
    }

    #[test]
    fn single_block_wall_on_y() {
        // Figure 4(a) in miniature: one block straddling both columns.
        let blocks = [Rect::new(-1, 6, 2, 2)];
        let d = Coord::new(5, 5);
        assert!(covers_on_y(&blocks, Coord::ORIGIN, d));
        assert!(!covers_on_x(&blocks, Coord::ORIGIN, d));
        assert!(!minimal_path_exists_by_coverage(&blocks, Coord::ORIGIN, d));
    }

    #[test]
    fn two_block_staircase_covers_on_y() {
        // Block 1 over the source column, block 2 higher and shifted east,
        // overlapping block 1's x_max, reaching the destination column.
        let blocks = [Rect::new(-2, 2, 1, 2), Rect::new(1, 6, 4, 5)];
        let d = Coord::new(6, 8);
        assert!(covers_on_y(&blocks, Coord::ORIGIN, d));
        assert!(!minimal_path_exists_by_coverage(&blocks, Coord::ORIGIN, d));
    }

    #[test]
    fn gap_in_staircase_does_not_cover() {
        // Same two blocks but block 2 starts east of block 1's x_max + 1,
        // leaving a column to slip through.
        let blocks = [Rect::new(-2, 2, 1, 2), Rect::new(4, 6, 4, 5)];
        let d = Coord::new(6, 8);
        assert!(!covers_on_y(&blocks, Coord::ORIGIN, d));
        assert!(minimal_path_exists_by_coverage(&blocks, Coord::ORIGIN, d));
    }

    #[test]
    fn covering_on_x_detected_symmetrically() {
        // A wall of blocks to the east covering rows 0..yd.
        let blocks = [Rect::new(2, 2, -1, 6)];
        let d = Coord::new(5, 5);
        assert!(covers_on_x(&blocks, Coord::ORIGIN, d));
        assert!(!covers_on_y(&blocks, Coord::ORIGIN, d));
    }

    #[test]
    fn block_below_source_is_irrelevant() {
        let blocks = [Rect::new(-1, 6, -3, -1)];
        assert!(minimal_path_exists_by_coverage(
            &blocks,
            Coord::ORIGIN,
            Coord::new(5, 5)
        ));
    }

    #[test]
    fn block_above_destination_is_irrelevant() {
        let blocks = [Rect::new(-1, 6, 7, 9)];
        assert!(minimal_path_exists_by_coverage(
            &blocks,
            Coord::ORIGIN,
            Coord::new(5, 5)
        ));
    }

    #[test]
    fn normalization_handles_all_quadrants() {
        let s = Coord::new(10, 10);
        // A wall north of s blocking quadrant II destinations on y.
        let blocks = [Rect::new(2, 12, 13, 13)];
        let d2 = Coord::new(4, 16);
        assert!(!minimal_path_exists_by_coverage(&blocks, s, d2));
        // The same wall does not block a quadrant IV destination.
        let d4 = Coord::new(16, 4);
        assert!(minimal_path_exists_by_coverage(&blocks, s, d4));
    }

    #[test]
    fn chain_must_be_strictly_increasing_in_y() {
        // The second block overlaps the first's row band, so they do not
        // chain on y, and a path slips through the x-gap at column 3.
        let blocks = [Rect::new(-2, 2, 1, 3), Rect::new(4, 6, 3, 5)];
        let d = Coord::new(6, 8);
        assert!(!covers_on_y(&blocks, Coord::ORIGIN, d));
        assert!(minimal_path_exists_by_coverage(&blocks, Coord::ORIGIN, d));
    }

    #[test]
    fn adjacent_column_link_still_covers() {
        // Block 2 starts exactly one column east of block 1's edge: the
        // only squeeze-through column is barred, so the pair covers on y.
        let blocks = [Rect::new(-2, 2, 1, 2), Rect::new(3, 6, 4, 5)];
        let d = Coord::new(6, 8);
        assert!(covers_on_y(&blocks, Coord::ORIGIN, d));
        assert!(!minimal_path_exists_by_coverage(&blocks, Coord::ORIGIN, d));
    }
}
