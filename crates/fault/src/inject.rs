//! Random fault injection.
//!
//! The paper's evaluation uses up to 200 faults placed uniformly at random
//! (without repetition) in a 200×200 mesh. [`uniform`] reproduces that
//! process; [`clustered`] generates spatially correlated faults for the
//! ablation benchmarks (clustered faults produce larger blocks, stressing
//! the block-formation and safety machinery harder than the paper's
//! scattered faults do).

use rand::Rng;

use emr_mesh::{Coord, Mesh};

use crate::FaultSet;

/// Draws `count` distinct faulty nodes uniformly at random, never using a
/// node in `forbidden` (typically the source, which the paper assumes to be
/// outside every faulty block).
///
/// Draws the exact RNG stream and selection a partial Fisher–Yates over
/// the materialized eligible list would (`uniform_matches_dense_selection`
/// pins this), but sparsely: the sweep engine calls this once per trial,
/// and building the O(mesh) eligible and index tables dominated trial
/// setup. Only the O(count) touched swap entries are stored instead.
///
/// # Panics
///
/// Panics if `count` exceeds the number of eligible nodes.
pub fn uniform(mesh: Mesh, count: usize, forbidden: &[Coord], rng: &mut impl Rng) -> FaultSet {
    // Ascending node indices of the excluded nodes (off-mesh entries never
    // matched the eligible filter, duplicates removed by the dedup).
    let mut fidx: Vec<usize> = forbidden
        .iter()
        .filter(|c| mesh.contains(**c))
        .map(|&c| mesh.index_of(c))
        .collect();
    fidx.sort_unstable();
    fidx.dedup();
    let eligible = mesh.node_count() - fidx.len();
    assert!(
        count <= eligible,
        "cannot place {count} faults among {eligible} eligible nodes"
    );
    // Partial Fisher–Yates over the virtual identity table 0..eligible;
    // `touched` holds only the entries that differ from the identity.
    // A map keeps lookup O(log count) — the linear-probe version this
    // replaces went quadratic in `count` and dominated giant-mesh trials.
    let mut touched: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
    let width = usize::try_from(mesh.width()).unwrap_or(1);
    let chosen = (0..count).map(|i| {
        let j = i + (rng.next_u64() as usize) % (eligible - i);
        let vi = touched.get(&i).copied().unwrap_or(i);
        let vj = touched.get(&j).copied().unwrap_or(j);
        touched.insert(i, vj);
        touched.insert(j, vi);
        // The picked eligible rank, mapped to a node index by re-inserting
        // the excluded slots below it.
        let mut ni = vj;
        for &f in &fidx {
            if f <= ni {
                ni += 1;
            } else {
                break;
            }
        }
        Coord::new(
            i32::try_from(ni % width).unwrap_or(i32::MAX),
            i32::try_from(ni / width).unwrap_or(i32::MAX),
        )
    });
    FaultSet::from_coords(mesh, chosen)
}

/// Draws `count` distinct faults clustered around `centers` random cluster
/// centers: each fault picks a center and scatters around it with
/// geometric tail `spread` (larger spread ⇒ looser clusters). Used by the
/// ablation benches; not part of the paper's evaluation.
///
/// # Panics
///
/// Panics if `centers` is zero or `count` exceeds the number of eligible
/// nodes.
pub fn clustered(
    mesh: Mesh,
    count: usize,
    centers: usize,
    spread: f64,
    forbidden: &[Coord],
    rng: &mut impl Rng,
) -> FaultSet {
    assert!(centers > 0, "need at least one cluster center");
    let eligible = mesh.node_count().saturating_sub(forbidden.len());
    assert!(
        count <= eligible,
        "cannot place {count} faults among {eligible} eligible nodes"
    );
    let hubs: Vec<Coord> = (0..centers)
        .map(|_| {
            Coord::new(
                rng.gen_range(0..mesh.width()),
                rng.gen_range(0..mesh.height()),
            )
        })
        .collect();
    let mut set = FaultSet::new(mesh);
    let mut placed = 0;
    while placed < count {
        let hub = hubs[rng.gen_range(0..hubs.len())];
        let dx = sample_offset(spread, rng);
        let dy = sample_offset(spread, rng);
        let c = Coord::new(hub.x + dx, hub.y + dy);
        if mesh.contains(c) && !forbidden.contains(&c) && set.insert(c) {
            placed += 1;
        }
    }
    set
}

/// A symmetric geometric-tailed integer offset with scale `spread`.
fn sample_offset(spread: f64, rng: &mut impl Rng) -> i32 {
    let mut mag = 0;
    let p = 1.0 / (1.0 + spread.max(0.0));
    while !rng.gen_bool(p) {
        mag += 1;
        if mag > 10_000 {
            break; // Defensive bound; unreachable for sane spreads.
        }
    }
    if rng.gen_bool(0.5) {
        mag
    } else {
        -mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn uniform_places_exact_count_of_distinct_faults() {
        let mut rng = StdRng::seed_from_u64(7);
        let mesh = Mesh::square(20);
        let set = uniform(mesh, 50, &[], &mut rng);
        assert_eq!(set.len(), 50);
        // Distinctness is guaranteed by FaultSet, but double-check via iter.
        let mut coords: Vec<Coord> = set.iter().collect();
        coords.sort();
        coords.dedup();
        assert_eq!(coords.len(), 50);
    }

    #[test]
    fn uniform_respects_forbidden_nodes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mesh = Mesh::square(4);
        let center = mesh.center();
        for _ in 0..20 {
            let set = uniform(mesh, 15, &[center], &mut rng);
            assert!(!set.is_faulty(center));
        }
    }

    #[test]
    fn uniform_can_fill_every_eligible_node() {
        let mut rng = StdRng::seed_from_u64(1);
        let mesh = Mesh::square(3);
        let set = uniform(mesh, 8, &[mesh.center()], &mut rng);
        assert_eq!(set.len(), 8);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn uniform_rejects_oversized_requests() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = uniform(Mesh::square(2), 5, &[], &mut rng);
    }

    #[test]
    fn uniform_matches_dense_selection() {
        // The sparse Fisher–Yates must reproduce the old dense
        // implementation draw for draw: same seed, same fault set —
        // every seeded experiment in the repo depends on this.
        let dense = |mesh: Mesh, count: usize, forbidden: &[Coord], rng: &mut StdRng| {
            let eligible: Vec<Coord> = mesh.nodes().filter(|c| !forbidden.contains(c)).collect();
            let chosen = eligible.choose_multiple(rng, count).copied();
            FaultSet::from_coords(mesh, chosen)
        };
        let center = Mesh::square(17).center();
        let cases: &[(Mesh, usize, &[Coord])] = &[
            (Mesh::square(17), 0, &[]),
            (Mesh::square(17), 25, &[]),
            (Mesh::square(17), 25, &[center]),
            (Mesh::new(1, 40), 10, &[Coord::new(0, 0), Coord::new(0, 39)]),
            (Mesh::new(40, 1), 39, &[Coord::new(5, 0)]),
            (Mesh::square(4), 15, &[Coord::new(2, 2)]),
        ];
        for &(mesh, count, forbidden) in cases {
            for seed in 0..20u64 {
                let a = uniform(mesh, count, forbidden, &mut StdRng::seed_from_u64(seed));
                let b = dense(mesh, count, forbidden, &mut StdRng::seed_from_u64(seed));
                assert_eq!(a, b, "{mesh:?} count {count} seed {seed}");
                assert_eq!(a.len(), count);
                assert!(forbidden.iter().all(|&c| !a.is_faulty(c)));
            }
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mesh = Mesh::square(30);
        let a = uniform(mesh, 40, &[], &mut StdRng::seed_from_u64(42));
        let b = uniform(mesh, 40, &[], &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn clustered_places_exact_count() {
        let mut rng = StdRng::seed_from_u64(11);
        let mesh = Mesh::square(40);
        let set = clustered(mesh, 60, 3, 2.0, &[mesh.center()], &mut rng);
        assert_eq!(set.len(), 60);
        assert!(!set.is_faulty(mesh.center()));
    }

    #[test]
    fn clustered_is_more_compact_than_uniform() {
        // Average pairwise distance should be clearly smaller for tight
        // clusters than for uniform placement on a large mesh.
        let mesh = Mesh::square(100);
        let mut rng = StdRng::seed_from_u64(5);
        let tight = clustered(mesh, 40, 2, 1.5, &[], &mut rng);
        let loose = uniform(mesh, 40, &[], &mut rng);
        let avg = |s: &FaultSet| {
            let v: Vec<Coord> = s.iter().collect();
            let mut total = 0u64;
            let mut pairs = 0u64;
            for i in 0..v.len() {
                for j in (i + 1)..v.len() {
                    total += u64::from(v[i].manhattan(v[j]));
                    pairs += 1;
                }
            }
            total as f64 / pairs as f64
        };
        assert!(avg(&tight) < avg(&loose) / 2.0);
    }
}
