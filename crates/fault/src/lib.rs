//! Fault substrate for the extended-minimal-routing reproduction.
//!
//! This crate implements every fault-related system the paper depends on:
//!
//! * [`FaultSet`] and [`inject`] — randomly generated node faults
//!   (the paper's evaluation uses up to 200 random faults in a 200×200
//!   mesh), plus a clustered generator for ablations,
//! * [`BlockMap`] — the **faulty block** model of Definition 1: non-faulty
//!   nodes become *disabled* when they have faulty/disabled neighbors in
//!   both dimensions; connected faulty∪disabled components converge to
//!   disjoint rectangles,
//! * [`MccMap`] — Wang's **minimal connected components** (Definition 2):
//!   a refinement that only disables nodes whose use provably destroys
//!   minimality (useless / can't-reach labeling, type-one for quadrant
//!   I/III routing and type-two for II/IV),
//! * [`reach`] — the exact monotone-reachability oracle (the ground truth
//!   "existence of a minimal path" curve of every figure),
//! * [`reach_bits`] — the word-parallel form of the same oracle: a packed
//!   per-pair kernel plus [`ReachMap`], which answers reachability from
//!   one source to every node after four quadrant sweeps,
//! * [`coverage`] — Wang's necessary-and-sufficient condition phrased on
//!   block rectangles (the global-information baseline).
//!
//! # Examples
//!
//! ```
//! use emr_mesh::{Coord, Mesh};
//! use emr_fault::{BlockMap, FaultSet};
//!
//! // The eight faults of the paper's Figure 1(a) form the block [2:6, 3:6].
//! let mesh = Mesh::square(10);
//! let faults = FaultSet::from_coords(
//!     mesh,
//!     [(3, 3), (3, 4), (4, 4), (5, 4), (6, 4), (2, 5), (5, 5), (3, 6)]
//!         .into_iter()
//!         .map(Coord::from),
//! );
//! let blocks = BlockMap::build(&faults);
//! assert_eq!(blocks.blocks().len(), 1);
//! assert_eq!(blocks.blocks()[0].rect().to_string(), "[2:6, 3:6]");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod block_bits;
pub mod coverage;
mod fault_set;
pub mod inject;
mod mcc;
mod mcc_bits;
pub mod reach;
pub mod reach_bits;
pub mod workspace;

pub use block::{BlockMap, FaultyBlock, NodeState};
pub use fault_set::FaultSet;
pub use mcc::{Mcc, MccMap, MccStatus, MccType};
pub use reach_bits::ReachMap;
pub use workspace::Workspace;
