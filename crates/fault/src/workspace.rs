//! Reusable scratch buffers for the hot decomposition loops.
//!
//! Building a [`crate::BlockMap`], an [`crate::MccMap`], or a
//! reachability table allocates several transient grids and queues. One
//! sweep trial does all of these; a full experiment does millions. A
//! [`Workspace`] owns those transients so a worker thread can pay for
//! them once and reuse them across trials via the `*_with` entry points
//! ([`crate::BlockMap::build_with`], [`crate::MccMap::build_with`],
//! [`crate::reach::minimal_path_exists_with`], …).
//!
//! The plain entry points (`build`, `minimal_path_exists`, …) stay
//! allocation-free too: they borrow a thread-local workspace through
//! [`with_scratch`], so existing call sites benefit without changes.

use std::cell::RefCell;
use std::collections::VecDeque;

use emr_mesh::{BitGrid, Coord, Dist, Grid, Mesh};

/// A direction-indexed safety-level tuple, structurally identical to
/// `emr_distsim::protocols::EslTuple` (this crate cannot name that alias
/// without a dependency cycle).
pub type LevelTuple = [Dist; 4];

/// Scratch buffers shared by the fault-model decompositions, the safety
/// sweeps, and the reachability dynamic program.
///
/// Every buffer is reset (not trusted) by the code that uses it, so a
/// workspace carries no state between calls — only capacity. In
/// particular a workspace is **not tied to any mesh size**: each grid
/// buffer is retargeted via [`Grid::reset`] on entry, which resizes on
/// demand, so one workspace may serve meshes of differing (growing or
/// shrinking) dimensions back to back. `workspace_survives_mesh_changes`
/// is the regression test for that guarantee; new `*_with` entry points
/// must reset every buffer they use before reading it.
///
/// The fields are public because the consumers span several crates
/// (`emr-fault` itself, `emr-core`'s safety sweeps); callers other than
/// the `*_with` implementations normally never touch them.
#[derive(Debug)]
pub struct Workspace {
    /// BFS / worklist queue for fix-points and component extraction.
    pub queue: VecDeque<Coord>,
    /// Visited marks for component extraction.
    pub visited: Grid<bool>,
    /// General boolean node marks (faulty flags, obstacle maps).
    pub mark_a: Grid<bool>,
    /// Second mark plane (the MCC "useless" labeling).
    pub mark_b: Grid<bool>,
    /// Third mark plane (the MCC "can't-reach" labeling).
    pub mark_c: Grid<bool>,
    /// Reachability DP table over a normalized route rectangle.
    pub table: Grid<bool>,
    /// Safety-level tuples for the directional distance sweeps.
    pub tuples: Grid<LevelTuple>,
    /// Packed obstacle bits for the word-parallel reachability kernels.
    pub packed: BitGrid,
    /// First packed label plane for the construction kernels (the MCC
    /// "useless" bits, the safety sweeps' transposed obstacle grid).
    pub bits_a: BitGrid,
    /// Second packed label plane (the MCC "can't-reach" bits).
    pub bits_b: BitGrid,
    /// Packed open-mask row for [`crate::reach_bits::reach_row`].
    pub row_open: Vec<u64>,
    /// Packed reach-bits row carried between [`crate::reach_bits`] rows.
    pub row_cur: Vec<u64>,
    /// Reverse back-walk buffer for [`crate::reach::minimal_path_with`].
    pub rev: Vec<Coord>,
}

impl Workspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Workspace {
        let unit = Mesh::new(1, 1);
        Workspace {
            queue: VecDeque::new(),
            visited: Grid::new(unit, false),
            mark_a: Grid::new(unit, false),
            mark_b: Grid::new(unit, false),
            mark_c: Grid::new(unit, false),
            table: Grid::new(unit, false),
            tuples: Grid::new(unit, [0; 4]),
            packed: BitGrid::new(unit),
            bits_a: BitGrid::new(unit),
            bits_b: BitGrid::new(unit),
            row_open: Vec::new(),
            row_cur: Vec::new(),
            rev: Vec::new(),
        }
    }
}

impl Default for Workspace {
    fn default() -> Workspace {
        Workspace::new()
    }
}

thread_local! {
    static SCRATCH: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` with this thread's shared scratch workspace.
///
/// Reentrant calls (e.g. a `blocked` predicate that itself consults the
/// reachability oracle) fall back to a fresh workspace instead of
/// panicking on the double borrow.
pub fn with_scratch<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut Workspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_is_reusable_and_reentrant() {
        let first = with_scratch(|ws| {
            ws.queue.push_back(Coord::ORIGIN);
            ws.visited.reset(Mesh::square(4), true);
            // A nested borrow must still work (fresh workspace).
            with_scratch(|inner| inner.queue.len())
        });
        assert_eq!(first, 0);
        // The outer workspace kept its (stale) state; users must reset.
        with_scratch(|ws| {
            assert_eq!(ws.queue.len(), 1);
            ws.queue.clear();
        });
    }

    #[test]
    fn workspace_survives_mesh_changes() {
        use crate::reach::{minimal_path_exists, minimal_path_exists_with};
        use crate::reach_bits::{minimal_path_exists_bits_with, ReachMap};
        use crate::{BlockMap, FaultSet, MccMap, MccType};

        // One workspace, driven through every *_with entry point across
        // growing, shrinking, and degenerate meshes. Each result must
        // equal a fresh build — stale capacity or dimensions from the
        // previous mesh must never leak through.
        let mut ws = Workspace::new();
        let shapes = [(4, 4), (9, 9), (1, 7), (6, 2), (13, 5)];
        for &(w, h) in &shapes {
            let mesh = Mesh::new(w, h);
            let faults = FaultSet::from_coords(
                mesh,
                [
                    Coord::new(0, 0),
                    Coord::new((w - 1) / 2, (h - 1) / 2),
                    Coord::new(w - 1, h - 1),
                ],
            );
            let blocks = BlockMap::build_with(&faults, &mut ws);
            assert_eq!(blocks, BlockMap::build(&faults), "{w}x{h} blocks");
            assert_eq!(
                BlockMap::build_scalar_with(&faults, &mut ws),
                blocks,
                "{w}x{h} scalar blocks"
            );
            for ty in MccType::ALL {
                let mcc = MccMap::build_with(&faults, ty, &mut ws);
                assert_eq!(mcc, MccMap::build(&faults, ty), "{w}x{h} {ty:?}");
                assert_eq!(
                    MccMap::build_scalar_with(&faults, ty, &mut ws),
                    mcc,
                    "{w}x{h} scalar {ty:?}"
                );
            }
            let s = Coord::new(0, h - 1);
            let d = Coord::new(w - 1, 0);
            let blocked = |c: Coord| faults.is_faulty(c);
            assert_eq!(
                minimal_path_exists_with(&mesh, s, d, blocked, &mut ws),
                minimal_path_exists(&mesh, s, d, blocked),
                "{w}x{h} reach"
            );
            assert_eq!(
                minimal_path_exists_bits_with(&mesh, s, d, blocked, &mut ws),
                minimal_path_exists(&mesh, s, d, blocked),
                "{w}x{h} reach bits"
            );
            let map = ReachMap::from_source_with(&mesh, s, blocked, &mut ws);
            for dest in mesh.nodes() {
                assert_eq!(
                    map.reachable(dest),
                    minimal_path_exists(&mesh, s, dest, blocked),
                    "{w}x{h} map {dest}"
                );
            }
        }
    }
}
