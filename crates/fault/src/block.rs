use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use emr_mesh::{BitGrid, Coord, Direction, Grid, MemBytes, Mesh, Rect};

use crate::block_bits;
use crate::workspace::{with_scratch, Workspace};
use crate::FaultSet;

/// The status of a node under the faulty-block model (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeState {
    /// A healthy, usable node (the paper's *enabled*).
    Enabled,
    /// A failed node.
    Faulty,
    /// A healthy node deactivated because it has faulty/disabled neighbors
    /// in both dimensions.
    Disabled,
}

impl NodeState {
    /// Whether the node belongs to a faulty block (faulty or disabled).
    pub fn is_blocked(self) -> bool {
        !matches!(self, NodeState::Enabled)
    }
}

/// One faulty block: a maximal connected component of faulty and disabled
/// nodes. Under Definition 1 every component converges to a full rectangle;
/// [`BlockMap::build`] asserts this invariant in debug builds and the test
/// suite property-checks it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultyBlock {
    rect: Rect,
    faulty_nodes: usize,
    disabled_nodes: usize,
}

impl FaultyBlock {
    /// The rectangle `[x_min:x_max, y_min:y_max]` covered by the block.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// The number of genuinely faulty nodes inside the block.
    pub fn faulty_nodes(&self) -> usize {
        self.faulty_nodes
    }

    /// The number of healthy-but-disabled nodes inside the block
    /// (the quantity plotted in the paper's Figure 8).
    pub fn disabled_nodes(&self) -> usize {
        self.disabled_nodes
    }
}

/// The faulty-block decomposition of a mesh: per-node states plus the list
/// of disjoint rectangular blocks.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Mesh};
/// use emr_fault::{BlockMap, FaultSet, NodeState};
///
/// // Two diagonal faults close into a 2×2 block.
/// let mesh = Mesh::square(5);
/// let faults = FaultSet::from_coords(mesh, [Coord::new(1, 1), Coord::new(2, 2)]);
/// let map = BlockMap::build(&faults);
/// assert_eq!(map.state(Coord::new(1, 2)), NodeState::Disabled);
/// assert_eq!(map.blocks().len(), 1);
/// assert_eq!(map.blocks()[0].rect().node_count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockMap {
    mesh: Mesh,
    state: Grid<NodeState>,
    /// The blocked (faulty ∪ disabled) bits, kept in lock-step with
    /// `state`. Downstream word-parallel passes (safety levels, the
    /// reachability sweeps) consume this directly.
    packed: BitGrid,
    blocks: Vec<FaultyBlock>,
    /// The block rectangles, cached in `blocks` order so hot loops can
    /// borrow them without a per-call allocation.
    rects: Vec<Rect>,
}

impl BlockMap {
    /// Runs Definition 1 to its fix-point and extracts the blocks.
    ///
    /// A non-faulty node is disabled when it has at least one faulty or
    /// disabled neighbor along X *and* one along Y ("two or more disabled or
    /// faulty neighbors in different dimensions"). Off-mesh positions count
    /// as healthy.
    ///
    /// Runs the word-parallel fix-point of [`crate::block_bits`]; the
    /// scalar worklist survives as [`BlockMap::build_scalar`], the
    /// differential anchor (`conform` oracle `block-bits-matches-scalar`
    /// pins the equivalence).
    pub fn build(faults: &FaultSet) -> BlockMap {
        with_scratch(|ws| BlockMap::build_with(faults, ws))
    }

    /// [`BlockMap::build`] reusing a caller-owned scratch [`Workspace`]
    /// for the fix-point row buffers (the per-node state grid is part of
    /// the returned map and always allocated).
    pub fn build_with(faults: &FaultSet, ws: &mut Workspace) -> BlockMap {
        let mut packed = faults.packed().clone();
        block_bits::disable_fixpoint(&mut packed, &mut ws.row_open, &mut ws.row_cur);
        BlockMap::decode(packed, faults)
    }

    /// [`BlockMap::build`] with the fix-point split into `bands`
    /// horizontal row bands relaxed on scoped threads — intra-mesh
    /// parallelism for giant meshes, where one build dominates a trial.
    /// The result is bit-identical to [`BlockMap::build`] for every band
    /// count (the fix-point is unique; see
    /// `crate::block_bits::disable_fixpoint_banded` for the argument);
    /// `bands` is clamped to the mesh height, and 1 band runs the
    /// sequential kernel without spawning.
    pub fn build_banded(faults: &FaultSet, bands: usize) -> BlockMap {
        let mut packed = faults.packed().clone();
        block_bits::disable_fixpoint_banded(&mut packed, bands);
        BlockMap::decode(packed, faults)
    }

    /// Decodes a converged packed blocked labeling into the full map:
    /// per-node states, packed bits, and the extracted block rectangles.
    fn decode(packed: BitGrid, faults: &FaultSet) -> BlockMap {
        let mesh = faults.mesh();
        // Blocked bits are Disabled unless genuinely faulty.
        let mut state = Grid::new(mesh, NodeState::Enabled);
        let width = mesh.width() as usize;
        {
            let cells = state.as_mut_slice();
            for y in 0..mesh.height() {
                let base = y as usize * width;
                block_bits::for_each_set_bit(packed.row(y), |x| {
                    cells[base + x] = NodeState::Disabled;
                });
                block_bits::for_each_set_bit(faults.packed().row(y), |x| {
                    cells[base + x] = NodeState::Faulty;
                });
            }
        }

        let blocks: Vec<FaultyBlock> = block_bits::extract_rects(&packed, faults.packed())
            .into_iter()
            .map(|(rect, faulty_nodes, disabled_nodes)| FaultyBlock {
                rect,
                faulty_nodes,
                disabled_nodes,
            })
            .collect();
        let rects = blocks.iter().map(|b| b.rect).collect();
        let map = BlockMap {
            mesh,
            state,
            packed,
            blocks,
            rects,
        };
        debug_assert!(map.rect_invariant_holds());
        map
    }

    /// The original per-node worklist fix-point — the ground truth the
    /// word-parallel [`BlockMap::build`] is differentially tested
    /// against. Produces a structurally identical map (same states, same
    /// blocks in the same order).
    pub fn build_scalar(faults: &FaultSet) -> BlockMap {
        with_scratch(|ws| BlockMap::build_scalar_with(faults, ws))
    }

    /// [`BlockMap::build_scalar`] reusing a caller-owned scratch
    /// [`Workspace`] for the worklist and component-extraction buffers.
    pub fn build_scalar_with(faults: &FaultSet, ws: &mut Workspace) -> BlockMap {
        let mesh = faults.mesh();
        let mut state = Grid::from_fn(mesh, |c| {
            if faults.is_faulty(c) {
                NodeState::Faulty
            } else {
                NodeState::Enabled
            }
        });

        // Worklist fix-point: whenever a node turns faulty/disabled its
        // enabled neighbors become candidates.
        let queue = &mut ws.queue;
        queue.clear();
        queue.extend(faults.iter().flat_map(|f| mesh.neighbors(f)));
        while let Some(u) = queue.pop_front() {
            if state[u] != NodeState::Enabled {
                continue;
            }
            let blocked = |c: Coord| state.get(c).is_some_and(|s| s.is_blocked());
            let x_blocked = blocked(u.step(Direction::East)) || blocked(u.step(Direction::West));
            let y_blocked = blocked(u.step(Direction::North)) || blocked(u.step(Direction::South));
            if x_blocked && y_blocked {
                state[u] = NodeState::Disabled;
                queue.extend(mesh.neighbors(u));
            }
        }

        let blocks = extract_blocks(mesh, &state, ws);
        let packed = BitGrid::from_blocked(mesh, |c| state[c].is_blocked());
        let rects = blocks.iter().map(|b| b.rect).collect();
        let map = BlockMap {
            mesh,
            state,
            packed,
            blocks,
            rects,
        };
        debug_assert!(map.rect_invariant_holds());
        map
    }

    /// The mesh this decomposition covers.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The status of node `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the mesh.
    pub fn state(&self, c: Coord) -> NodeState {
        self.state[c]
    }

    /// Whether `c` is part of a faulty block. Off-mesh positions are not.
    pub fn is_blocked(&self, c: Coord) -> bool {
        self.state.get(c).is_some_and(|s| s.is_blocked())
    }

    /// The disjoint rectangular blocks, in discovery (row-major) order.
    pub fn blocks(&self) -> &[FaultyBlock] {
        &self.blocks
    }

    /// The block rectangles only (the representation routing code
    /// consumes), cached in [`BlockMap::blocks`] order — no per-call
    /// allocation.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The blocked (faulty ∪ disabled) nodes as a packed bit grid — the
    /// input the word-parallel safety and reachability passes start from.
    pub fn packed(&self) -> &BitGrid {
        &self.packed
    }

    /// The block containing `c`, if any.
    pub fn block_containing(&self, c: Coord) -> Option<&FaultyBlock> {
        self.blocks.iter().find(|b| b.rect().contains(c))
    }

    /// The total number of disabled (healthy but deactivated) nodes.
    pub fn disabled_count(&self) -> usize {
        self.blocks.iter().map(|b| b.disabled_nodes()).sum()
    }

    /// Incrementally records a newly failed node, updating the labeling
    /// and block list without rebuilding the whole decomposition — the
    /// paper's §1 information-model claim ("when a disturbance occurs,
    /// only those affected nodes update their information").
    ///
    /// The cost is proportional to the affected region: the relabeling
    /// worklist plus one BFS over the (possibly merged) block containing
    /// the new fault. Equivalence with a full rebuild is property-tested.
    ///
    /// Returns the rectangle of the (possibly merged) block containing
    /// `c` after the update — the disturbance footprint callers use to
    /// clip downstream recomputation. Every node whose state changed lies
    /// inside it.
    ///
    /// # Panics
    ///
    /// Panics if `c` lies outside the mesh.
    // emr-lint: allow(A1, "documented panic contract plus worklist invariants: a faulty node always belongs to a block, and only blocked nodes enter the component queue")
    pub fn insert_fault(&mut self, c: Coord) -> Rect {
        assert!(self.mesh.contains(c), "fault {c} outside mesh");
        if self.state[c] == NodeState::Faulty {
            return self
                .block_containing(c)
                .expect("faulty node belongs to a block")
                .rect();
        }
        self.state[c] = NodeState::Faulty;
        self.packed.set(c, true);

        // Re-run the Definition 1 worklist from the disturbance.
        let mut queue: VecDeque<Coord> = self.mesh.neighbors(c).collect();
        while let Some(u) = queue.pop_front() {
            if self.state[u] != NodeState::Enabled {
                continue;
            }
            let blocked = |v: Coord| self.state.get(v).is_some_and(|s| s.is_blocked());
            let x_blocked = blocked(u.step(Direction::East)) || blocked(u.step(Direction::West));
            let y_blocked = blocked(u.step(Direction::North)) || blocked(u.step(Direction::South));
            if x_blocked && y_blocked {
                self.state[u] = NodeState::Disabled;
                self.packed.set(u, true);
                queue.extend(self.mesh.neighbors(u));
            }
        }

        // The new/merged component containing the fault.
        let mut rect = Rect::point(c);
        let mut faulty_nodes = 0;
        let mut disabled_nodes = 0;
        let mut visited = std::collections::BTreeSet::from([c]);
        let mut queue = VecDeque::from([c]);
        while let Some(u) = queue.pop_front() {
            rect = rect.expanded_to(u);
            match self.state[u] {
                NodeState::Faulty => faulty_nodes += 1,
                NodeState::Disabled => disabled_nodes += 1,
                NodeState::Enabled => unreachable!("enabled node in component"),
            }
            for v in self.mesh.neighbors(u) {
                if self.state[v].is_blocked() && visited.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        // Absorb the blocks the new component swallowed (by the rectangle
        // invariant, rect intersection ⟺ absorption).
        self.blocks.retain(|b| !b.rect().intersects(&rect));
        self.blocks.push(FaultyBlock {
            rect,
            faulty_nodes,
            disabled_nodes,
        });
        self.rects.clear();
        self.rects.extend(self.blocks.iter().map(|b| b.rect));
        debug_assert!(self.rect_invariant_holds());
        rect
    }

    /// Checks the paper's structural claim: each connected component of
    /// faulty∪disabled nodes fills its bounding rectangle, which also makes
    /// the blocks pairwise disjoint.
    pub fn rect_invariant_holds(&self) -> bool {
        self.blocks.iter().all(|b| {
            b.rect()
                .iter()
                .all(|c| self.mesh.contains(c) && self.state[c].is_blocked())
        }) && {
            let total_blocked = self.state.count(|s| s.is_blocked());
            let in_rects: usize = self.blocks.iter().map(|b| b.rect().node_count()).sum();
            total_blocked == in_rects
        } && self
            .mesh
            .nodes()
            .all(|c| self.packed.get(c) == Some(self.state[c].is_blocked()))
            && self
                .rects
                .iter()
                .copied()
                .eq(self.blocks.iter().map(|b| b.rect))
    }
}

impl MemBytes for BlockMap {
    /// The per-node state grid, the packed blocked bits, and the block
    /// list with its cached rectangles.
    fn mem_bytes(&self) -> u64 {
        self.state.mem_bytes()
            + self.packed.mem_bytes()
            + (self.blocks.len() * std::mem::size_of::<FaultyBlock>()) as u64
            + (self.rects.len() * std::mem::size_of::<Rect>()) as u64
    }
}

fn extract_blocks(mesh: Mesh, state: &Grid<NodeState>, ws: &mut Workspace) -> Vec<FaultyBlock> {
    let Workspace { queue, visited, .. } = ws;
    visited.reset(mesh, false);
    let mut blocks = Vec::new();
    for start in mesh.nodes() {
        if visited[start] || !state[start].is_blocked() {
            continue;
        }
        // BFS over the component, tracking the bounding box and node kinds.
        let mut rect = Rect::point(start);
        let mut faulty_nodes = 0;
        let mut disabled_nodes = 0;
        queue.clear();
        queue.push_back(start);
        visited[start] = true;
        while let Some(u) = queue.pop_front() {
            rect = rect.expanded_to(u);
            match state[u] {
                NodeState::Faulty => faulty_nodes += 1,
                NodeState::Disabled => disabled_nodes += 1,
                NodeState::Enabled => unreachable!("enabled node in component"),
            }
            for v in mesh.neighbors(u) {
                if !visited[v] && state[v].is_blocked() {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
        blocks.push(FaultyBlock {
            rect,
            faulty_nodes,
            disabled_nodes,
        });
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(mesh: Mesh, coords: &[(i32, i32)]) -> BlockMap {
        let faults = FaultSet::from_coords(mesh, coords.iter().map(|&c| Coord::from(c)));
        BlockMap::build(&faults)
    }

    #[test]
    fn paper_figure_1a_block() {
        // Eight faults of Figure 1(a) form the rectangle [2:6, 3:6].
        let map = build(
            Mesh::square(10),
            &[
                (3, 3),
                (3, 4),
                (4, 4),
                (5, 4),
                (6, 4),
                (2, 5),
                (5, 5),
                (3, 6),
            ],
        );
        assert_eq!(map.blocks().len(), 1);
        let b = map.blocks()[0];
        assert_eq!(b.rect(), Rect::new(2, 6, 3, 6));
        assert_eq!(b.faulty_nodes(), 8);
        assert_eq!(b.disabled_nodes(), 20 - 8);
        assert!(map.rect_invariant_holds());
    }

    #[test]
    fn isolated_fault_is_a_unit_block() {
        let map = build(Mesh::square(5), &[(2, 2)]);
        assert_eq!(map.blocks().len(), 1);
        assert_eq!(map.blocks()[0].rect(), Rect::new(2, 2, 2, 2));
        assert_eq!(map.blocks()[0].disabled_nodes(), 0);
        assert_eq!(map.state(Coord::new(2, 3)), NodeState::Enabled);
    }

    #[test]
    fn diagonal_faults_close_into_square() {
        let map = build(Mesh::square(5), &[(1, 1), (2, 2)]);
        assert_eq!(map.blocks().len(), 1);
        assert_eq!(map.blocks()[0].rect(), Rect::new(1, 2, 1, 2));
        assert_eq!(map.state(Coord::new(1, 2)), NodeState::Disabled);
        assert_eq!(map.state(Coord::new(2, 1)), NodeState::Disabled);
    }

    #[test]
    fn same_dimension_neighbors_do_not_disable() {
        // Two faults flanking a node in the same dimension leave it enabled.
        let map = build(Mesh::square(5), &[(1, 2), (3, 2)]);
        assert_eq!(map.state(Coord::new(2, 2)), NodeState::Enabled);
        assert_eq!(map.blocks().len(), 2);
    }

    #[test]
    fn u_shape_cavity_fills() {
        // A U of faults; the cavity nodes must be disabled transitively.
        let map = build(
            Mesh::square(6),
            &[(1, 1), (1, 2), (1, 3), (2, 3), (3, 3), (3, 2), (3, 1)],
        );
        assert_eq!(map.blocks().len(), 1);
        assert_eq!(map.blocks()[0].rect(), Rect::new(1, 3, 1, 3));
        assert_eq!(map.state(Coord::new(2, 1)), NodeState::Disabled);
        assert_eq!(map.state(Coord::new(2, 2)), NodeState::Disabled);
    }

    #[test]
    fn corner_of_mesh_uses_existing_neighbors_only() {
        // Faults at (1,0) and (0,1) disable the mesh corner (0,0).
        let map = build(Mesh::square(4), &[(1, 0), (0, 1)]);
        assert_eq!(map.state(Coord::new(0, 0)), NodeState::Disabled);
        assert_eq!(map.blocks().len(), 1);
        assert_eq!(map.blocks()[0].rect(), Rect::new(0, 1, 0, 1));
    }

    #[test]
    fn no_faults_no_blocks() {
        let map = BlockMap::build(&FaultSet::new(Mesh::square(4)));
        assert!(map.blocks().is_empty());
        assert_eq!(map.disabled_count(), 0);
        assert!(map.rect_invariant_holds());
    }

    #[test]
    fn block_containing_lookup() {
        let map = build(Mesh::square(5), &[(1, 1), (2, 2)]);
        assert!(map.block_containing(Coord::new(2, 1)).is_some());
        assert!(map.block_containing(Coord::new(4, 4)).is_none());
    }

    #[test]
    fn is_blocked_off_mesh_is_false() {
        let map = build(Mesh::square(3), &[(0, 0)]);
        assert!(!map.is_blocked(Coord::new(-1, 0)));
        assert!(map.is_blocked(Coord::new(0, 0)));
    }
    #[test]
    fn incremental_insert_matches_rebuild() {
        let mesh = Mesh::square(12);
        // A fault sequence that grows, merges and converts disabled nodes.
        let sequence = [
            (3, 3),
            (4, 4),
            (8, 8),
            (8, 7),
            (5, 5),
            (6, 6),
            (7, 7), // bridges the two clusters
            (4, 3), // already-disabled node fails for real
            (0, 0),
        ];
        let mut incremental = BlockMap::build(&FaultSet::new(mesh));
        let mut all = Vec::new();
        for &(x, y) in &sequence {
            let c = Coord::new(x, y);
            all.push(c);
            incremental.insert_fault(c);
            let rebuilt = BlockMap::build(&FaultSet::from_coords(mesh, all.iter().copied()));
            // Same states everywhere…
            for n in mesh.nodes() {
                assert_eq!(incremental.state(n), rebuilt.state(n), "after {c} at {n}");
            }
            // …and the same block set (order-insensitive).
            let mut a = incremental.rects().to_vec();
            let mut b = rebuilt.rects().to_vec();
            a.sort_by_key(|r| (r.x_min(), r.y_min()));
            b.sort_by_key(|r| (r.x_min(), r.y_min()));
            assert_eq!(a, b, "after {c}");
            assert_eq!(
                incremental.disabled_count(),
                rebuilt.disabled_count(),
                "after {c}"
            );
            assert!(incremental.rect_invariant_holds());
        }
    }

    #[test]
    fn bit_build_matches_scalar_on_random_and_edge_densities() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Random fills at 0%, ~10%, ~50%, plus fully faulty rows — the
        // carry/fix-point edge cases — across word-boundary widths and
        // degenerate meshes.
        let shapes = [(16, 16), (65, 3), (63, 4), (1, 9), (9, 1), (128, 2)];
        for seed in 0..12u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for &(w, h) in &shapes {
                let mesh = Mesh::new(w, h);
                let density = [0.0, 0.1, 0.5][seed as usize % 3];
                let mut faults = FaultSet::new(mesh);
                for c in mesh.nodes() {
                    if rng.gen_bool(density) {
                        faults.insert(c);
                    }
                }
                if seed % 4 == 3 && h > 1 {
                    // A fully faulty row seals the mesh in two.
                    for x in 0..w {
                        faults.insert(Coord::new(x, h / 2));
                    }
                }
                let bits = BlockMap::build(&faults);
                let scalar = BlockMap::build_scalar(&faults);
                assert_eq!(bits, scalar, "seed {seed} {w}x{h}");
                assert!(bits.rect_invariant_holds());
            }
        }
    }

    #[test]
    fn banded_build_matches_scalar_for_every_band_count() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Awkward widths (word boundaries, 4095/4097-style non-×64 tails
        // on thin meshes) and band counts from degenerate to
        // beyond-height.
        let shapes = [
            (16, 16),
            (65, 7),
            (127, 5),
            (130, 4),
            (4095, 2),
            (4097, 2),
            (1, 9),
        ];
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            for &(w, h) in &shapes {
                let mesh = Mesh::new(w, h);
                let mut faults = FaultSet::new(mesh);
                for c in mesh.nodes() {
                    if rng.gen_bool(0.12) {
                        faults.insert(c);
                    }
                }
                let scalar = BlockMap::build_scalar(&faults);
                for bands in [1, 2, 3, 5, 64] {
                    let banded = BlockMap::build_banded(&faults, bands);
                    assert_eq!(banded, scalar, "seed {seed} {w}x{h} bands {bands}");
                }
            }
        }
    }

    #[test]
    fn incremental_insert_is_idempotent() {
        let mesh = Mesh::square(6);
        let mut map = BlockMap::build(&FaultSet::new(mesh));
        let first = map.insert_fault(Coord::new(2, 2));
        let again = map.insert_fault(Coord::new(2, 2));
        assert_eq!(map.blocks().len(), 1);
        assert_eq!(map.blocks()[0].faulty_nodes(), 1);
        assert_eq!(first, Rect::point(Coord::new(2, 2)));
        assert_eq!(again, first, "re-inserting returns the containing rect");
    }

    #[test]
    fn insert_fault_rect_covers_every_changed_node() {
        let mesh = Mesh::square(12);
        let sequence = [(3, 3), (4, 4), (5, 3), (3, 5), (8, 8), (7, 7)];
        let mut map = BlockMap::build(&FaultSet::new(mesh));
        for &(x, y) in &sequence {
            let before = map.state.clone();
            let rect = map.insert_fault(Coord::new(x, y));
            for n in mesh.nodes() {
                if map.state(n) != before[n] {
                    assert!(rect.contains(n), "changed node {n} outside {rect:?}");
                }
            }
        }
    }

    #[test]
    fn random_incremental_sequences_match_rebuild() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mesh = Mesh::square(16);
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut incremental = BlockMap::build(&FaultSet::new(mesh));
            let mut all = Vec::new();
            for _ in 0..25 {
                let c = Coord::new(rng.gen_range(0..16), rng.gen_range(0..16));
                all.push(c);
                incremental.insert_fault(c);
            }
            let rebuilt = BlockMap::build(&FaultSet::from_coords(mesh, all.iter().copied()));
            for n in mesh.nodes() {
                assert_eq!(incremental.state(n), rebuilt.state(n), "seed {seed} at {n}");
            }
            assert_eq!(
                incremental.blocks().len(),
                rebuilt.blocks().len(),
                "seed {seed}"
            );
        }
    }
}
