use serde::{Deserialize, Serialize};

use emr_mesh::{BitGrid, Coord, Direction, Grid, MemBytes, Mesh, Quadrant, Rect};

use crate::workspace::{with_scratch, Workspace};
use crate::{block_bits, mcc_bits, FaultSet};

/// Which pair of routing quadrants an MCC labeling serves.
///
/// Wang's refinement "removes corner sections" of a faulty block depending
/// on the relative source/destination location: quadrant I/III routing uses
/// *type-one* MCCs (NW and SE corner sections removed), quadrant II/IV uses
/// *type-two* (SW and NE removed). Each node therefore carries two statuses,
/// one per type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MccType {
    /// For quadrant I and III routing.
    One,
    /// For quadrant II and IV routing.
    Two,
}

impl MccType {
    /// Both labelings.
    pub const ALL: [MccType; 2] = [MccType::One, MccType::Two];

    /// The labeling used when routing from `source` towards `dest`.
    pub fn for_route(source: Coord, dest: Coord) -> MccType {
        if Quadrant::of(source, dest).is_type_one() {
            MccType::One
        } else {
            MccType::Two
        }
    }
}

/// The status of a node under one MCC labeling (Definition 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MccStatus {
    /// Healthy and usable for minimal routing.
    FaultFree,
    /// A failed node.
    Faulty,
    /// Entering this node forces a non-minimal next move
    /// (its "forward" neighbors are blocked).
    Useless,
    /// Entering this node already required a non-minimal move
    /// (its "backward" neighbors are blocked).
    CantReach,
}

impl MccStatus {
    /// Whether the node belongs to an MCC (anything but fault-free).
    pub fn is_blocked(self) -> bool {
        !matches!(self, MccStatus::FaultFree)
    }
}

/// One minimal connected component: a maximal connected set of faulty,
/// useless and can't-reach nodes. MCCs are rectilinear-monotone staircase
/// polygons, so unlike [`crate::FaultyBlock`]s they carry their exact node
/// set in addition to a bounding rectangle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mcc {
    rect: Rect,
    nodes: Vec<Coord>,
    faulty_nodes: usize,
    disabled_nodes: usize,
}

impl Mcc {
    /// The bounding rectangle of the component.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Every node of the component, in BFS discovery order.
    pub fn nodes(&self) -> &[Coord] {
        &self.nodes
    }

    /// The number of genuinely faulty nodes.
    pub fn faulty_nodes(&self) -> usize {
        self.faulty_nodes
    }

    /// The number of healthy nodes swallowed by the component
    /// (useless + can't-reach), the MCC series of the paper's Figure 8.
    pub fn disabled_nodes(&self) -> usize {
        self.disabled_nodes
    }
}

/// The MCC decomposition of a mesh for one labeling type.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Mesh};
/// use emr_fault::{FaultSet, MccMap, MccStatus, MccType};
///
/// // A NE-facing corner: the node tucked under it is useless for
/// // quadrant-I routing but usable for quadrant-II/IV routing.
/// let mesh = Mesh::square(5);
/// let faults = FaultSet::from_coords(mesh, [Coord::new(2, 3), Coord::new(3, 2)]);
/// let one = MccMap::build(&faults, MccType::One);
/// let two = MccMap::build(&faults, MccType::Two);
/// assert_eq!(one.status(Coord::new(2, 2)), MccStatus::Useless);
/// assert_eq!(two.status(Coord::new(2, 2)), MccStatus::FaultFree);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MccMap {
    mesh: Mesh,
    ty: MccType,
    status: Grid<MccStatus>,
    /// The blocked (faulty ∪ useless ∪ can't-reach) bits, kept in
    /// lock-step with `status` for the word-parallel downstream passes.
    packed: BitGrid,
    components: Vec<Mcc>,
    /// Component bounding rectangles cached in `components` order, so hot
    /// loops can borrow them without a per-call allocation.
    rects: Vec<Rect>,
    // The two label planes of Definition 2, kept alongside `status`
    // because a node can carry *both* labels while `status` only shows
    // the higher-priority one (faulty > useless > can't-reach). The
    // incremental fix-point in [`MccMap::insert_fault`] needs the exact
    // planes to resume from.
    useless: Grid<bool>,
    cant_reach: Grid<bool>,
}

/// Forward neighbors (blocking "useless") and backward neighbors
/// (blocking "can't-reach") for one labeling type. Type-one quadrant I:
/// forward = {N, E}; type-two (quadrant II): forward = {N, W}.
fn type_dirs(ty: MccType) -> ([Direction; 2], [Direction; 2]) {
    match ty {
        MccType::One => (
            [Direction::North, Direction::East],
            [Direction::South, Direction::West],
        ),
        MccType::Two => (
            [Direction::North, Direction::West],
            [Direction::South, Direction::East],
        ),
    }
}

impl MccMap {
    /// Runs the Definition 2 labeling to its fix-point and extracts the
    /// components.
    ///
    /// For type-one: a fault-free node is `useless` when its north and east
    /// neighbors are both faulty-or-useless, and `can't-reach` when its
    /// south and west neighbors are both faulty-or-can't-reach. Type-two
    /// exchanges the roles of east and west. Off-mesh neighbors count as
    /// fault-free, per the definition's literal reading; this keeps the
    /// labeling exact for minimal routing (property-tested against the
    /// monotone-reachability oracle).
    /// Runs the word-parallel sweeps of [`crate::mcc_bits`]; the scalar
    /// per-node sweep survives as [`MccMap::build_scalar`], the
    /// differential anchor (`conform` oracle `mcc-bits-matches-scalar`
    /// pins the equivalence).
    pub fn build(faults: &FaultSet, ty: MccType) -> MccMap {
        with_scratch(|ws| MccMap::build_with(faults, ty, ws))
    }

    /// [`MccMap::build`] reusing a caller-owned scratch [`Workspace`] for
    /// the packed label planes and the component-extraction buffers.
    pub fn build_with(faults: &FaultSet, ty: MccType, ws: &mut Workspace) -> MccMap {
        let mesh = faults.mesh();
        let (fwd, bwd) = type_dirs(ty);
        let (status, useless, cant_reach, packed) = {
            let Workspace {
                bits_a,
                bits_b,
                row_open,
                row_cur,
                ..
            } = ws;
            mcc_bits::label_plane(faults.packed(), fwd, bits_a, row_open, row_cur);
            mcc_bits::label_plane(faults.packed(), bwd, bits_b, row_open, row_cur);
            decode_planes(faults, bits_a, bits_b)
        };
        let components = extract_components(mesh, &status, ws);
        let rects = components.iter().map(|m| m.rect).collect();
        MccMap {
            mesh,
            ty,
            status,
            packed,
            components,
            rects,
            useless,
            cant_reach,
        }
    }

    /// [`MccMap::build`] with both label-plane sweeps split into `bands`
    /// horizontal row bands relaxed on scoped threads — intra-mesh
    /// parallelism for giant meshes. Bit-identical to [`MccMap::build`]
    /// for every band count (see
    /// `crate::mcc_bits::label_plane_banded` for the fix-point
    /// uniqueness argument); `bands` is clamped to the mesh height, and
    /// 1 band runs the sequential sweeps without spawning.
    pub fn build_banded(faults: &FaultSet, ty: MccType, bands: usize) -> MccMap {
        with_scratch(|ws| MccMap::build_banded_with(faults, ty, bands, ws))
    }

    /// [`MccMap::build_banded`] reusing a caller-owned scratch
    /// [`Workspace`] for the packed label planes and the
    /// component-extraction buffers.
    pub fn build_banded_with(
        faults: &FaultSet,
        ty: MccType,
        bands: usize,
        ws: &mut Workspace,
    ) -> MccMap {
        let mesh = faults.mesh();
        let (fwd, bwd) = type_dirs(ty);
        let (status, useless, cant_reach, packed) = {
            let Workspace { bits_a, bits_b, .. } = ws;
            mcc_bits::label_plane_banded(faults.packed(), fwd, bits_a, bands);
            mcc_bits::label_plane_banded(faults.packed(), bwd, bits_b, bands);
            decode_planes(faults, bits_a, bits_b)
        };
        let components = extract_components(mesh, &status, ws);
        let rects = components.iter().map(|m| m.rect).collect();
        MccMap {
            mesh,
            ty,
            status,
            packed,
            components,
            rects,
            useless,
            cant_reach,
        }
    }

    /// The original per-node sweep — the ground truth the word-parallel
    /// [`MccMap::build`] is differentially tested against. Produces a
    /// structurally identical map.
    pub fn build_scalar(faults: &FaultSet, ty: MccType) -> MccMap {
        with_scratch(|ws| MccMap::build_scalar_with(faults, ty, ws))
    }

    /// [`MccMap::build_scalar`] reusing a caller-owned scratch
    /// [`Workspace`] for the three labeling planes and the
    /// component-extraction buffers.
    pub fn build_scalar_with(faults: &FaultSet, ty: MccType, ws: &mut Workspace) -> MccMap {
        let mesh = faults.mesh();
        let (fwd, bwd) = type_dirs(ty);

        let Workspace {
            mark_a: faulty,
            mark_b: useless,
            mark_c: cant_reach,
            ..
        } = ws;
        faulty.reset(mesh, false);
        for c in mesh.nodes() {
            faulty[c] = faults.is_faulty(c);
        }
        sweep_label_into(mesh, faulty, fwd, useless);
        sweep_label_into(mesh, faulty, bwd, cant_reach);

        let status = Grid::from_fn(mesh, |c| {
            if faulty[c] {
                MccStatus::Faulty
            } else if useless[c] {
                MccStatus::Useless
            } else if cant_reach[c] {
                MccStatus::CantReach
            } else {
                MccStatus::FaultFree
            }
        });

        let useless_plane = ws.mark_b.clone();
        let cant_reach_plane = ws.mark_c.clone();
        let components = extract_components(mesh, &status, ws);
        let packed = BitGrid::from_blocked(mesh, |c| status[c].is_blocked());
        let rects = components.iter().map(|m| m.rect).collect();
        MccMap {
            mesh,
            ty,
            status,
            packed,
            components,
            rects,
            useless: useless_plane,
            cant_reach: cant_reach_plane,
        }
    }

    /// The mesh this decomposition covers.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Which labeling this map holds.
    pub fn mcc_type(&self) -> MccType {
        self.ty
    }

    /// The status of node `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the mesh.
    pub fn status(&self, c: Coord) -> MccStatus {
        self.status[c]
    }

    /// Whether `c` belongs to an MCC. Off-mesh positions do not.
    pub fn is_blocked(&self, c: Coord) -> bool {
        self.status.get(c).is_some_and(|s| s.is_blocked())
    }

    /// The components, in discovery order: row-major after a full build;
    /// after [`MccMap::insert_fault`] the touched (possibly merged)
    /// component is re-appended at the end, so compare component lists
    /// order-insensitively.
    pub fn components(&self) -> &[Mcc] {
        &self.components
    }

    /// Bounding rectangles of all components, cached in
    /// [`MccMap::components`] order — no per-call allocation.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The MCC-blocked nodes as a packed bit grid — the input the
    /// word-parallel safety pass starts from.
    pub fn packed(&self) -> &BitGrid {
        &self.packed
    }

    /// The total number of healthy nodes swallowed by MCCs.
    pub fn disabled_count(&self) -> usize {
        self.components.iter().map(|m| m.disabled_nodes()).sum()
    }

    /// Incrementally records a newly failed node, resuming the Definition 2
    /// label fix-point from the disturbance instead of rebuilding the grid.
    ///
    /// Both label planes are monotone under fault insertion (labels only
    /// ever appear), so a clipped worklist seeded at the new fault reaches
    /// exactly the fix-point a full [`MccMap::build`] computes — the
    /// equivalence is property-tested here and in `emr-conform`.
    ///
    /// Returns the bounding rectangle of every node whose *membership*
    /// changed (fault-free ↔ blocked), or `None` when nothing entered an
    /// MCC that was not already in one (including re-inserting a faulty
    /// node). Status refinements between blocked kinds (e.g. useless →
    /// faulty) do not count: they are invisible to `is_blocked` and to the
    /// safety maps derived from it.
    ///
    /// # Panics
    ///
    /// Panics if `c` lies outside the mesh.
    // emr-lint: allow(A1, "worklist invariant: only blocked-status nodes enter the component queue, so a fault-free node there is a labeling bug")
    pub fn insert_fault(&mut self, c: Coord) -> Option<Rect> {
        assert!(self.mesh.contains(c), "fault {c} outside mesh");
        if self.status[c] == MccStatus::Faulty {
            return None;
        }
        let MccMap {
            mesh,
            ty,
            status,
            packed,
            components,
            rects,
            useless,
            cant_reach,
        } = self;
        let mesh = *mesh;
        let was_blocked = status[c].is_blocked();
        status[c] = MccStatus::Faulty;
        packed.set(c, true);
        useless[c] = false;
        cant_reach[c] = false;
        let mut changed: Option<Rect> = (!was_blocked).then(|| Rect::point(c));
        let grow = |changed: &mut Option<Rect>, u: Coord| {
            *changed = Some(match changed.take() {
                Some(r) => r.expanded_to(u),
                None => Rect::point(u),
            });
        };

        let (fwd, bwd) = type_dirs(*ty);
        for u in relabel_from(mesh, status, useless, fwd, c) {
            if !status[u].is_blocked() {
                grow(&mut changed, u);
            }
            // Useless outranks can't-reach in the status projection.
            status[u] = MccStatus::Useless;
            packed.set(u, true);
        }
        for u in relabel_from(mesh, status, cant_reach, bwd, c) {
            if !status[u].is_blocked() {
                grow(&mut changed, u);
                status[u] = MccStatus::CantReach;
                packed.set(u, true);
            }
        }

        // Re-extract the single component containing the fault: every
        // newly labeled node is adjacent to a previously changed blocked
        // node, so all changes merge into this one component.
        let mut rect = Rect::point(c);
        let mut nodes = Vec::new();
        let mut faulty_nodes = 0;
        let mut disabled_nodes = 0;
        let mut visited = std::collections::BTreeSet::from([c]);
        let mut queue = std::collections::VecDeque::from([c]);
        while let Some(u) = queue.pop_front() {
            rect = rect.expanded_to(u);
            nodes.push(u);
            match status[u] {
                MccStatus::Faulty => faulty_nodes += 1,
                MccStatus::Useless | MccStatus::CantReach => disabled_nodes += 1,
                MccStatus::FaultFree => unreachable!("fault-free node in MCC"),
            }
            for v in mesh.neighbors(u) {
                if status[v].is_blocked() && visited.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        components.retain(|m| !visited.contains(&m.nodes[0]));
        components.push(Mcc {
            rect,
            nodes,
            faulty_nodes,
            disabled_nodes,
        });
        rects.clear();
        rects.extend(components.iter().map(|m| m.rect));
        changed
    }
}

impl MemBytes for MccMap {
    /// The status grid, both exact label planes, the packed bits, and
    /// the component list (each component carries its node set).
    fn mem_bytes(&self) -> u64 {
        let components: usize = self
            .components
            .iter()
            .map(|m| std::mem::size_of::<Mcc>() + m.nodes.len() * std::mem::size_of::<Coord>())
            .sum();
        self.status.mem_bytes()
            + self.useless.mem_bytes()
            + self.cant_reach.mem_bytes()
            + self.packed.mem_bytes()
            + (components + self.rects.len() * std::mem::size_of::<Rect>()) as u64
    }
}

/// Decodes the two packed label planes into the per-node status grid,
/// the exact per-plane boolean grids, and the combined packed blocked
/// bits. Write order encodes the status priority:
/// faulty > useless > can't-reach.
#[allow(clippy::type_complexity)]
// emr-lint: allow(A1, "plane indices come from the label grid the same pass wrote; every coordinate is in-mesh")
fn decode_planes(
    faults: &FaultSet,
    bits_a: &BitGrid,
    bits_b: &BitGrid,
) -> (Grid<MccStatus>, Grid<bool>, Grid<bool>, BitGrid) {
    let mesh = faults.mesh();
    let mut status = Grid::new(mesh, MccStatus::FaultFree);
    let mut useless = Grid::new(mesh, false);
    let mut cant_reach = Grid::new(mesh, false);
    let mut packed = faults.packed().clone();
    let width = mesh.width() as usize;
    {
        let st = status.as_mut_slice();
        let ul = useless.as_mut_slice();
        let cr = cant_reach.as_mut_slice();
        for y in 0..mesh.height() {
            let base = y as usize * width;
            block_bits::for_each_set_bit(bits_b.row(y), |x| {
                cr[base + x] = true;
                st[base + x] = MccStatus::CantReach;
            });
            block_bits::for_each_set_bit(bits_a.row(y), |x| {
                ul[base + x] = true;
                st[base + x] = MccStatus::Useless;
            });
            block_bits::for_each_set_bit(faults.packed().row(y), |x| {
                st[base + x] = MccStatus::Faulty;
            });
            let packed_row = packed.row_mut(y);
            for (i, w) in packed_row.iter_mut().enumerate() {
                *w |= bits_a.row(y)[i] | bits_b.row(y)[i];
            }
        }
    }
    (status, useless, cant_reach, packed)
}

/// Resumes one label plane's fix-point after `seed` turned faulty. A node
/// gains the label when both `dirs` neighbors are faulty-or-labeled; each
/// gain re-enqueues the nodes that see the gainer as a `dirs` neighbor.
/// Returns the nodes that gained the label, in discovery order.
fn relabel_from(
    mesh: Mesh,
    status: &Grid<MccStatus>,
    label: &mut Grid<bool>,
    dirs: [Direction; 2],
    seed: Coord,
) -> Vec<Coord> {
    let mut gained = Vec::new();
    let mut queue: std::collections::VecDeque<Coord> =
        dirs.iter().map(|&d| seed.step(d.opposite())).collect();
    while let Some(u) = queue.pop_front() {
        if !mesh.contains(u) || status[u] == MccStatus::Faulty || label[u] {
            continue;
        }
        let blocked = |v: Coord| mesh.contains(v) && (status[v] == MccStatus::Faulty || label[v]);
        if blocked(u.step(dirs[0])) && blocked(u.step(dirs[1])) {
            label[u] = true;
            gained.push(u);
            queue.push_back(u.step(dirs[0].opposite()));
            queue.push_back(u.step(dirs[1].opposite()));
        }
    }
    gained
}

/// One monotone sweep computes a label whose rule is "fault-free node with
/// both `dirs` neighbors faulty-or-labeled". Processing nodes in an order
/// where both `dirs` neighbors come first makes a single pass reach the
/// fix-point. Writes into a caller-provided grid (reset here) so the hot
/// path allocates nothing.
fn sweep_label_into(mesh: Mesh, faulty: &Grid<bool>, dirs: [Direction; 2], label: &mut Grid<bool>) {
    label.reset(mesh, false);
    let x_rev = dirs.contains(&Direction::East);
    let y_rev = dirs.contains(&Direction::North);
    for yi in 0..mesh.height() {
        let y = if y_rev { mesh.height() - 1 - yi } else { yi };
        for xi in 0..mesh.width() {
            let x = if x_rev { mesh.width() - 1 - xi } else { xi };
            let u = Coord::new(x, y);
            if faulty[u] {
                continue;
            }
            let blocked = |c: Coord| mesh.contains(c) && (faulty[c] || label[c]);
            if blocked(u.step(dirs[0])) && blocked(u.step(dirs[1])) {
                label[u] = true;
            }
        }
    }
}

// emr-lint: allow(A1, "component ids index the vector they were pushed into, and the status grid covers the mesh")
fn extract_components(mesh: Mesh, status: &Grid<MccStatus>, ws: &mut Workspace) -> Vec<Mcc> {
    let Workspace { queue, visited, .. } = ws;
    visited.reset(mesh, false);
    let mut components = Vec::new();
    for start in mesh.nodes() {
        if visited[start] || !status[start].is_blocked() {
            continue;
        }
        let mut rect = Rect::point(start);
        let mut nodes = Vec::new();
        let mut faulty_nodes = 0;
        let mut disabled_nodes = 0;
        queue.clear();
        queue.push_back(start);
        visited[start] = true;
        while let Some(u) = queue.pop_front() {
            rect = rect.expanded_to(u);
            nodes.push(u);
            match status[u] {
                MccStatus::Faulty => faulty_nodes += 1,
                MccStatus::Useless | MccStatus::CantReach => disabled_nodes += 1,
                MccStatus::FaultFree => unreachable!("fault-free node in MCC"),
            }
            for v in mesh.neighbors(u) {
                if !visited[v] && status[v].is_blocked() {
                    visited[v] = true;
                    queue.push_back(v);
                }
            }
        }
        components.push(Mcc {
            rect,
            nodes,
            faulty_nodes,
            disabled_nodes,
        });
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faults(mesh: Mesh, coords: &[(i32, i32)]) -> FaultSet {
        FaultSet::from_coords(mesh, coords.iter().map(|&c| Coord::from(c)))
    }

    /// The Figure 1(a) fault pattern used across the paper's examples.
    fn figure_1_faults() -> FaultSet {
        faults(
            Mesh::square(10),
            &[
                (3, 3),
                (3, 4),
                (4, 4),
                (5, 4),
                (6, 4),
                (2, 5),
                (5, 5),
                (3, 6),
            ],
        )
    }

    #[test]
    fn paper_figure_1_node_statuses() {
        // The paper reads off: (2,6) is (fault-free, disabled),
        // (4,5) is (disabled, disabled), (2,3) is (disabled, fault-free).
        // It also claims (4,3) is (fault-free, fault-free); however,
        // Definition 2 applied literally makes (4,3) useless under
        // type-two (its north (4,4) and west (3,3) neighbors are both
        // faulty, so entering it on a quadrant-II route forces a
        // non-minimal move). We follow the definition; the semantic
        // property tests against the monotone-reachability oracle confirm
        // the labeling is exact.
        let f = figure_1_faults();
        let one = MccMap::build(&f, MccType::One);
        let two = MccMap::build(&f, MccType::Two);
        assert!(!one.is_blocked(Coord::new(4, 3)));
        assert_eq!(two.status(Coord::new(4, 3)), MccStatus::Useless);
        assert!(!one.is_blocked(Coord::new(2, 6)));
        assert!(two.is_blocked(Coord::new(2, 6)));
        assert!(one.is_blocked(Coord::new(4, 5)));
        assert!(two.is_blocked(Coord::new(4, 5)));
        assert!(one.is_blocked(Coord::new(2, 3)));
        assert!(!two.is_blocked(Coord::new(2, 3)));
    }

    #[test]
    fn mcc_is_subset_of_faulty_block() {
        let f = figure_1_faults();
        let blocks = crate::BlockMap::build(&f);
        for ty in MccType::ALL {
            let mcc = MccMap::build(&f, ty);
            for c in f.mesh().nodes() {
                if mcc.is_blocked(c) {
                    assert!(blocks.is_blocked(c), "{c} in MCC but not in block");
                }
            }
            assert!(mcc.disabled_count() <= blocks.disabled_count());
        }
    }

    #[test]
    fn useless_corner_type_one() {
        // North and east neighbors faulty → useless under type-one only.
        let f = faults(Mesh::square(5), &[(2, 3), (3, 2)]);
        let one = MccMap::build(&f, MccType::One);
        assert_eq!(one.status(Coord::new(2, 2)), MccStatus::Useless);
        let two = MccMap::build(&f, MccType::Two);
        assert_eq!(two.status(Coord::new(2, 2)), MccStatus::FaultFree);
    }

    #[test]
    fn cant_reach_corner_type_one() {
        // South and west neighbors faulty → can't-reach under type-one.
        let f = faults(Mesh::square(5), &[(2, 1), (1, 2)]);
        let one = MccMap::build(&f, MccType::One);
        assert_eq!(one.status(Coord::new(2, 2)), MccStatus::CantReach);
        let two = MccMap::build(&f, MccType::Two);
        assert_eq!(two.status(Coord::new(2, 2)), MccStatus::FaultFree);
    }

    #[test]
    fn type_two_mirrors_type_one() {
        // NW corner pocket: useless under type-two.
        let f = faults(Mesh::square(5), &[(2, 3), (1, 2)]);
        let two = MccMap::build(&f, MccType::Two);
        assert_eq!(two.status(Coord::new(2, 2)), MccStatus::Useless);
        let one = MccMap::build(&f, MccType::One);
        assert_eq!(one.status(Coord::new(2, 2)), MccStatus::FaultFree);
    }

    #[test]
    fn labels_chain_transitively() {
        // A staircase of faults; the diagonal pockets chain useless labels.
        let f = faults(Mesh::square(6), &[(1, 4), (2, 3), (3, 2), (4, 1)]);
        let one = MccMap::build(&f, MccType::One);
        assert_eq!(one.status(Coord::new(1, 3)), MccStatus::Useless);
        assert_eq!(one.status(Coord::new(2, 2)), MccStatus::Useless);
        assert_eq!(one.status(Coord::new(3, 1)), MccStatus::Useless);
        // And the other side chains can't-reach.
        assert_eq!(one.status(Coord::new(2, 4)), MccStatus::CantReach);
        assert_eq!(one.status(Coord::new(3, 3)), MccStatus::CantReach);
        assert_eq!(one.status(Coord::new(4, 2)), MccStatus::CantReach);
        // Everything is one connected component.
        assert_eq!(one.components().len(), 1);
    }

    #[test]
    fn no_faults_no_components() {
        let f = FaultSet::new(Mesh::square(4));
        for ty in MccType::ALL {
            let mcc = MccMap::build(&f, ty);
            assert!(mcc.components().is_empty());
            assert_eq!(mcc.disabled_count(), 0);
        }
    }

    #[test]
    fn for_route_selects_type() {
        let s = Coord::new(5, 5);
        assert_eq!(MccType::for_route(s, Coord::new(8, 8)), MccType::One);
        assert_eq!(MccType::for_route(s, Coord::new(2, 2)), MccType::One);
        assert_eq!(MccType::for_route(s, Coord::new(2, 8)), MccType::Two);
        assert_eq!(MccType::for_route(s, Coord::new(8, 2)), MccType::Two);
    }

    /// Order-insensitive equivalence of two maps, down to the private
    /// label planes (a node can be useless *and* can't-reach while
    /// `status` only shows one; the planes must still match exactly).
    fn assert_equivalent(incremental: &MccMap, rebuilt: &MccMap, ctx: &str) {
        for n in incremental.mesh().nodes() {
            assert_eq!(incremental.status(n), rebuilt.status(n), "{ctx} at {n}");
            assert_eq!(incremental.useless[n], rebuilt.useless[n], "{ctx} at {n}");
            assert_eq!(
                incremental.cant_reach[n], rebuilt.cant_reach[n],
                "{ctx} at {n}"
            );
        }
        let sorted = |m: &MccMap| {
            let mut comps: Vec<(Rect, usize, usize, Vec<Coord>)> = m
                .components()
                .iter()
                .map(|c| {
                    let mut nodes = c.nodes().to_vec();
                    nodes.sort_by_key(|n| (n.y, n.x));
                    (c.rect(), c.faulty_nodes(), c.disabled_nodes(), nodes)
                })
                .collect();
            comps.sort_by_key(|(r, ..)| (r.x_min(), r.y_min()));
            comps
        };
        assert_eq!(sorted(incremental), sorted(rebuilt), "{ctx}");
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        let mesh = Mesh::square(12);
        // Grows, merges, and converts already-disabled nodes, like the
        // block-map twin of this test.
        let sequence = [
            (3, 3),
            (4, 4),
            (8, 8),
            (8, 7),
            (5, 5),
            (6, 6),
            (7, 7),
            (4, 3),
            (0, 0),
        ];
        for ty in MccType::ALL {
            let mut incremental = MccMap::build(&FaultSet::new(mesh), ty);
            let mut all = Vec::new();
            for &(x, y) in &sequence {
                let c = Coord::new(x, y);
                all.push(c);
                let before = incremental.status.clone();
                let changed = incremental.insert_fault(c);
                let rebuilt = MccMap::build(&FaultSet::from_coords(mesh, all.iter().copied()), ty);
                assert_equivalent(&incremental, &rebuilt, &format!("{ty:?} after {c}"));
                // The returned rect covers every membership change.
                for n in mesh.nodes() {
                    if incremental.status(n).is_blocked() != before[n].is_blocked() {
                        let r = changed.expect("membership changed but no rect");
                        assert!(r.contains(n), "{ty:?}: changed node {n} outside {r:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn incremental_insert_is_idempotent() {
        let mesh = Mesh::square(6);
        let mut map = MccMap::build(&FaultSet::new(mesh), MccType::One);
        assert!(map.insert_fault(Coord::new(2, 2)).is_some());
        assert_eq!(map.insert_fault(Coord::new(2, 2)), None);
        assert_eq!(map.components().len(), 1);
        assert_eq!(map.components()[0].faulty_nodes(), 1);
    }

    #[test]
    fn insert_into_own_label_pocket_reports_no_membership_change() {
        // (2,2) is useless under type-one once (2,3)/(3,2) fail; failing
        // it afterwards refines the status but changes no membership.
        let mesh = Mesh::square(5);
        let mut map = MccMap::build(&faults(mesh, &[(2, 3), (3, 2)]), MccType::One);
        assert_eq!(map.status(Coord::new(2, 2)), MccStatus::Useless);
        assert_eq!(map.insert_fault(Coord::new(2, 2)), None);
        assert_eq!(map.status(Coord::new(2, 2)), MccStatus::Faulty);
        let rebuilt = MccMap::build(&faults(mesh, &[(2, 3), (3, 2), (2, 2)]), MccType::One);
        assert_equivalent(&map, &rebuilt, "pocket fill");
    }

    #[test]
    fn random_incremental_sequences_match_rebuild() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for (w, h) in [(16, 16), (1, 9), (9, 1), (2, 13)] {
            let mesh = Mesh::new(w, h);
            for seed in 0..12u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                for ty in MccType::ALL {
                    let mut incremental = MccMap::build(&FaultSet::new(mesh), ty);
                    let mut all = Vec::new();
                    for _ in 0..((w * h / 4).clamp(2, 25)) {
                        let c = Coord::new(rng.gen_range(0..w), rng.gen_range(0..h));
                        all.push(c);
                        incremental.insert_fault(c);
                    }
                    let rebuilt =
                        MccMap::build(&FaultSet::from_coords(mesh, all.iter().copied()), ty);
                    assert_equivalent(
                        &incremental,
                        &rebuilt,
                        &format!("{w}x{h} seed {seed} {ty:?}"),
                    );
                }
            }
        }
    }

    #[test]
    fn bit_build_matches_scalar_on_random_and_edge_densities() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Mirror of the block-map differential test: random densities
        // (including 0% and ~50%) plus fully-faulty middle rows, across
        // word-boundary-straddling and degenerate shapes. Full struct
        // equality pins status, both label planes, packed bits,
        // components, and rect order.
        let shapes = [(16, 16), (65, 3), (63, 4), (1, 9), (9, 1), (128, 2)];
        for seed in 0..12u64 {
            let (w, h) = shapes[seed as usize % shapes.len()];
            let mesh = Mesh::new(w, h);
            let mut rng = StdRng::seed_from_u64(0xA11C + seed);
            let density = [0.0, 0.1, 0.5][seed as usize % 3];
            let mut f = FaultSet::new(mesh);
            for c in mesh.nodes() {
                if rng.gen_bool(density) {
                    f.insert(c);
                }
            }
            if seed % 4 == 3 {
                let y = h / 2;
                for x in 0..w {
                    f.insert(Coord::new(x, y));
                }
            }
            for ty in MccType::ALL {
                let bits = MccMap::build(&f, ty);
                let scalar = MccMap::build_scalar(&f, ty);
                assert_eq!(bits, scalar, "{w}x{h} seed {seed} {ty:?}");
            }
        }
    }

    #[test]
    fn banded_build_matches_scalar_for_every_band_count() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // Awkward widths (word boundaries plus 4095/4097 non-×64 tails on
        // thin meshes) under band counts from 1 to beyond-height; full
        // struct equality against the scalar ground truth.
        let shapes = [
            (16, 16),
            (65, 7),
            (127, 5),
            (130, 4),
            (4095, 2),
            (4097, 2),
            (1, 9),
        ];
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(0xBA4D + seed);
            for &(w, h) in &shapes {
                let mesh = Mesh::new(w, h);
                let mut f = FaultSet::new(mesh);
                for c in mesh.nodes() {
                    if rng.gen_bool(0.12) {
                        f.insert(c);
                    }
                }
                for ty in MccType::ALL {
                    let scalar = MccMap::build_scalar(&f, ty);
                    for bands in [1, 2, 3, 5, 64] {
                        let banded = MccMap::build_banded(&f, ty, bands);
                        assert_eq!(banded, scalar, "seed {seed} {w}x{h} {ty:?} bands {bands}");
                    }
                }
            }
        }
    }

    #[test]
    fn component_nodes_match_status() {
        let f = figure_1_faults();
        let one = MccMap::build(&f, MccType::One);
        let total: usize = one.components().iter().map(|m| m.nodes().len()).sum();
        let blocked = f.mesh().nodes().filter(|&c| one.is_blocked(c)).count();
        assert_eq!(total, blocked);
        for m in one.components() {
            for &c in m.nodes() {
                assert!(m.rect().contains(c));
                assert!(one.is_blocked(c));
            }
        }
    }
}
