//! Word-parallel Definition-1 faulty-block labeling.
//!
//! The scalar fix-point in [`crate::block`] disables nodes one at a time
//! off a worklist. This module runs the same fix-point 64 columns at a
//! time on a packed [`BitGrid`]:
//!
//! For a row `y` with packed blocked bits `cur` and vertical neighbors
//! `up`/`down` (off-mesh rows read as zero):
//!
//! ```text
//! elig  = (up | down) & !cur          // has a blocked neighbor along Y
//! seeds = elig & (cur≪1 | cur≫1)      // …and one along X, right now
//! fill  = run_fill(elig, seeds)       // within-row propagation
//! cur  |= fill
//! ```
//!
//! The run fill is exact: inside a maximal run of `elig` bits every newly
//! blocked node hands the disable condition to its run neighbors in both
//! directions, so the whole run blocks iff it contains a seed —
//! [`reach_row`] (eastward) followed by [`reach_row_west`] (westward over
//! the east-closed result) computes precisely that. Rows are swept in
//! alternating directions (ascending, then descending) until a full pass
//! changes nothing; blocking is monotone, so the fix-point terminates and
//! is order-independent — it equals the scalar worklist result.
//!
//! Component extraction exploits the rectangle invariant instead of a
//! BFS: every maximal bit run of a row either exactly matches an open
//! rectangle's span (extending it one row) or opens a new rectangle.
//! Blocks therefore come out in `(y_min, x_min)` order — the same
//! row-major discovery order as the scalar BFS extraction.

use emr_mesh::{BitGrid, Rect};

use crate::reach_bits::{reach_row, reach_row_west, shift_east_row};

/// Runs the Definition-1 disable fix-point on `cur` in place: on entry
/// `cur` holds the faulty bits, on exit the blocked (faulty ∪ disabled)
/// bits. `elig` and `seeds` are row-sized scratch buffers.
pub(crate) fn disable_fixpoint(cur: &mut BitGrid, elig: &mut Vec<u64>, seeds: &mut Vec<u64>) {
    let height = cur.mesh().height();
    let wpr = cur.words_per_row();
    elig.clear();
    elig.resize(wpr, 0);
    seeds.clear();
    seeds.resize(wpr, 0);
    let mut descending = false;
    loop {
        let mut changed = false;
        for step in 0..height {
            let y = if descending { height - 1 - step } else { step };
            changed |= relax_row(cur, y, elig, seeds);
        }
        if !changed {
            break;
        }
        descending = !descending;
    }
}

/// One row relaxation of the fix-point; returns whether any bit turned on.
fn relax_row(cur: &mut BitGrid, y: i32, elig: &mut [u64], seeds: &mut [u64]) -> bool {
    let height = cur.mesh().height();
    let wpr = cur.words_per_row();
    {
        let row = cur.row(y);
        // elig = blocked along Y, not yet blocked itself. Tail bits stay
        // zero because every row's tail bits are zero.
        for (i, e) in elig.iter_mut().enumerate() {
            let up = if y + 1 < height { cur.row(y + 1)[i] } else { 0 };
            let down = if y > 0 { cur.row(y - 1)[i] } else { 0 };
            *e = (up | down) & !row[i];
        }
        // seeds = elig with a currently blocked neighbor along X. The
        // shifted row may leak a bit into the tail position; the AND with
        // `elig` scrubs it.
        shift_east_row(row, seeds);
        let mut any = 0u64;
        for i in 0..wpr {
            let east_nb = row[i] >> 1 | if i + 1 < wpr { row[i + 1] << 63 } else { 0 };
            seeds[i] = elig[i] & (seeds[i] | east_nb);
            any |= seeds[i];
        }
        if any == 0 {
            return false;
        }
        // Within-row closure: a whole elig run blocks iff it holds a seed.
        reach_row(elig, seeds);
        reach_row_west(elig, seeds);
    }
    let row = cur.row_mut(y);
    let mut changed = false;
    for (r, &s) in row.iter_mut().zip(seeds.iter()) {
        let add = s & !*r;
        if add != 0 {
            changed = true;
            *r |= add;
        }
    }
    changed
}

/// The banded form of [`disable_fixpoint`]: splits the grid into
/// horizontal bands of whole rows and relaxes the bands on scoped
/// threads, exchanging frozen halo rows between rounds.
///
/// Each round copies every band's two out-of-band neighbor rows (the row
/// just below and just above the band; off-mesh halos read as zero),
/// then runs a full *local* fix-point inside each band against those
/// frozen halos. Rounds repeat until one changes nothing. The merge is
/// deterministic and exact for every band count: blocking is monotone,
/// stale halos are sound lower bounds (chaotic iteration of a monotone
/// operator), and a round with no changes means every row is closed
/// against its true neighbors — the unique least fix-point, bit-identical
/// to [`disable_fixpoint`] and to the scalar worklist.
pub(crate) fn disable_fixpoint_banded(cur: &mut BitGrid, bands: usize) {
    let height = cur.mesh().height() as usize;
    let wpr = cur.words_per_row();
    let rows_per_band = height.div_ceil(bands.clamp(1, height));
    let n_bands = height.div_ceil(rows_per_band);
    if n_bands == 1 {
        let (mut elig, mut seeds) = (Vec::new(), Vec::new());
        disable_fixpoint(cur, &mut elig, &mut seeds);
        return;
    }
    // Frozen halo rows, refreshed once per round: band b reads its
    // below-neighbor from halo_lo and its above-neighbor from halo_hi.
    let mut halo_lo = vec![0u64; n_bands * wpr];
    let mut halo_hi = vec![0u64; n_bands * wpr];
    loop {
        for b in 0..n_bands {
            let r0 = b * rows_per_band;
            let r1 = (r0 + rows_per_band).min(height);
            let lo = &mut halo_lo[b * wpr..(b + 1) * wpr];
            if r0 > 0 {
                lo.copy_from_slice(cur.row(i32::try_from(r0 - 1).unwrap_or(i32::MAX)));
            } else {
                lo.fill(0);
            }
            let hi = &mut halo_hi[b * wpr..(b + 1) * wpr];
            if r1 < height {
                hi.copy_from_slice(cur.row(i32::try_from(r1).unwrap_or(i32::MAX)));
            } else {
                hi.fill(0);
            }
        }
        let mut changed = false;
        std::thread::scope(|s| {
            let workers: Vec<_> = cur
                .row_bands_mut(rows_per_band)
                .zip(halo_lo.chunks(wpr).zip(halo_hi.chunks(wpr)))
                .map(|(band, (lo, hi))| s.spawn(move || band_fixpoint(band, wpr, lo, hi)))
                .collect();
            for w in workers {
                // Forward band-worker panics verbatim so the original
                // failure (not a join wrapper) reaches the caller.
                changed |= match w.join() {
                    Ok(c) => c,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
            }
        });
        if !changed {
            break;
        }
    }
}

/// Runs the local disable fix-point over one band of whole rows (the
/// mirror of [`disable_fixpoint`]'s outer loop), reading out-of-band
/// vertical neighbors from the frozen `lo`/`hi` halo rows. Returns
/// whether any bit turned on.
fn band_fixpoint(band: &mut [u64], wpr: usize, lo: &[u64], hi: &[u64]) -> bool {
    let nrows = band.len() / wpr;
    let mut elig = vec![0u64; wpr];
    let mut seeds = vec![0u64; wpr];
    let mut any_changed = false;
    let mut descending = false;
    loop {
        let mut changed = false;
        for step in 0..nrows {
            let r = if descending { nrows - 1 - step } else { step };
            changed |= relax_band_row(band, r, wpr, lo, hi, &mut elig, &mut seeds);
        }
        if !changed {
            break;
        }
        any_changed = true;
        descending = !descending;
    }
    any_changed
}

/// One row relaxation inside a band; local row `r`'s vertical neighbors
/// come from the band itself where possible and from the halos at the
/// band edges. Mirrors [`relax_row`] word for word otherwise.
fn relax_band_row(
    band: &mut [u64],
    r: usize,
    wpr: usize,
    lo: &[u64],
    hi: &[u64],
    elig: &mut [u64],
    seeds: &mut [u64],
) -> bool {
    let nrows = band.len() / wpr;
    let base = r * wpr;
    for (i, e) in elig.iter_mut().enumerate() {
        let up = if r + 1 < nrows {
            band[base + wpr + i]
        } else {
            hi[i]
        };
        let down = if r > 0 { band[base - wpr + i] } else { lo[i] };
        *e = (up | down) & !band[base + i];
    }
    {
        let row = &band[base..base + wpr];
        shift_east_row(row, seeds);
        let mut any = 0u64;
        for i in 0..wpr {
            let east_nb = row[i] >> 1 | if i + 1 < wpr { row[i + 1] << 63 } else { 0 };
            seeds[i] = elig[i] & (seeds[i] | east_nb);
            any |= seeds[i];
        }
        if any == 0 {
            return false;
        }
        reach_row(elig, seeds);
        reach_row_west(elig, seeds);
    }
    let row = &mut band[base..base + wpr];
    let mut changed = false;
    for (w, &s) in row.iter_mut().zip(seeds.iter()) {
        let add = s & !*w;
        if add != 0 {
            changed = true;
            *w |= add;
        }
    }
    changed
}

/// Extracts the rectangular components of `blocked` by run-merging rows,
/// returning `(rect, faulty_nodes, disabled_nodes)` per block in
/// row-major discovery order. `faults` supplies the genuinely faulty
/// bits for the per-block counts.
pub(crate) fn extract_rects(blocked: &BitGrid, faults: &BitGrid) -> Vec<(Rect, usize, usize)> {
    struct Acc {
        x_min: i32,
        x_max: i32,
        y_min: i32,
        y_max: i32,
        faulty: usize,
        disabled: usize,
    }
    let mesh = blocked.mesh();
    let mut accs: Vec<Acc> = Vec::new();
    // Indices of rectangles whose last filled row is the previous one,
    // ordered by x_min (runs and open rects share the left-to-right
    // order, so the merge below is a linear scan).
    let mut open: Vec<usize> = Vec::new();
    let mut next_open: Vec<usize> = Vec::new();
    for y in 0..mesh.height() {
        next_open.clear();
        let row = blocked.row(y);
        let frow = faults.row(y);
        let mut oi = 0;
        for_each_run(row, |s, e| {
            while oi < open.len() && accs[open[oi]].x_min < s {
                oi += 1;
            }
            let faulty = popcount_range(frow, s, e);
            let len = usize::try_from(e - s + 1).unwrap_or(0);
            if oi < open.len() && accs[open[oi]].x_min == s {
                let a = &mut accs[open[oi]];
                debug_assert_eq!(a.x_max, e, "rectangle invariant: spans must align");
                a.y_max = y;
                a.faulty += faulty;
                a.disabled += len - faulty;
                next_open.push(open[oi]);
                oi += 1;
            } else {
                accs.push(Acc {
                    x_min: s,
                    x_max: e,
                    y_min: y,
                    y_max: y,
                    faulty,
                    disabled: len - faulty,
                });
                next_open.push(accs.len() - 1);
            }
        });
        std::mem::swap(&mut open, &mut next_open);
    }
    accs.into_iter()
        .map(|a| {
            (
                Rect::new(a.x_min, a.x_max, a.y_min, a.y_max),
                a.faulty,
                a.disabled,
            )
        })
        .collect()
}

/// Calls `f(start, end)` for every maximal run of set bits in a packed
/// row (inclusive bit positions). Requires the row's tail bits zero
/// unless the width is a word multiple.
pub(crate) fn for_each_run(row: &[u64], mut f: impl FnMut(i32, i32)) {
    let mut start: Option<i32> = None;
    for (wi, &word) in row.iter().enumerate() {
        let base = i32::try_from(64 * wi).unwrap_or(i32::MAX);
        let mut offset: u32 = 0;
        while offset < 64 {
            let rem = word >> offset;
            if let Some(s) = start {
                let ones = (!rem).trailing_zeros();
                offset += ones;
                if offset < 64 {
                    // Offsets stay ≤ 64, well inside i32.
                    f(s, base + i32::try_from(offset).unwrap_or(64) - 1);
                    start = None;
                } // else: the run continues into the next word
            } else {
                if rem == 0 {
                    break;
                }
                offset += rem.trailing_zeros();
                start = Some(base + i32::try_from(offset).unwrap_or(64));
            }
        }
    }
    if let Some(s) = start {
        // Only reachable when the final word ends in a one, i.e. the row
        // width is an exact word multiple.
        f(s, i32::try_from(64 * row.len()).unwrap_or(i32::MAX) - 1);
    }
}

/// The number of set bits of `row` at positions `start ..= end`.
pub(crate) fn popcount_range(row: &[u64], start: i32, end: i32) -> usize {
    debug_assert!(0 <= start && start <= end);
    let (start, end) = (start as usize, end as usize);
    let mut total = 0usize;
    let words = &row[start / 64..=end / 64];
    for (i, &word) in words.iter().enumerate() {
        let mut w = word;
        let lo = (start / 64 + i) * 64;
        if start > lo {
            w &= !((1u64 << (start - lo)) - 1);
        }
        if end < lo + 63 {
            w &= (1u64 << (end - lo + 1)) - 1;
        }
        total += w.count_ones() as usize;
    }
    total
}

/// Calls `f(x)` for every set bit position of a packed row, ascending.
pub(crate) fn for_each_set_bit(row: &[u64], mut f: impl FnMut(usize)) {
    for (wi, &word) in row.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            f(wi * 64 + b);
            w &= w - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emr_mesh::{Coord, Mesh};

    #[test]
    fn runs_cover_word_boundaries_and_tails() {
        // Width 130: runs inside, across, and ending at the last column.
        let mesh = Mesh::new(130, 1);
        let mut g = BitGrid::new(mesh);
        for x in [0, 62, 63, 64, 65, 128, 129] {
            g.set(Coord::new(x, 0), true);
        }
        let mut runs = Vec::new();
        for_each_run(g.row(0), |s, e| runs.push((s, e)));
        assert_eq!(runs, vec![(0, 0), (62, 65), (128, 129)]);
        // Exact word-multiple width with a run touching the last bit.
        let mesh = Mesh::new(128, 1);
        let mut g = BitGrid::new(mesh);
        for x in 120..128 {
            g.set(Coord::new(x, 0), true);
        }
        let mut runs = Vec::new();
        for_each_run(g.row(0), |s, e| runs.push((s, e)));
        assert_eq!(runs, vec![(120, 127)]);
    }

    #[test]
    fn popcount_range_matches_naive() {
        let mesh = Mesh::new(150, 1);
        let g = BitGrid::from_blocked(mesh, |c| (c.x * 29) % 3 == 0);
        for &(s, e) in &[(0, 0), (0, 149), (63, 64), (10, 70), (64, 127), (130, 149)] {
            let naive = (s..=e)
                .filter(|&x| g.get(Coord::new(x, 0)) == Some(true))
                .count();
            assert_eq!(popcount_range(g.row(0), s, e), naive, "[{s}, {e}]");
        }
    }

    #[test]
    fn set_bit_iteration_is_ascending() {
        let mesh = Mesh::new(130, 1);
        let g = BitGrid::from_blocked(mesh, |c| c.x % 37 == 1);
        let mut seen = Vec::new();
        for_each_set_bit(g.row(0), |x| seen.push(x));
        assert_eq!(seen, vec![1, 38, 75, 112]);
    }
}
