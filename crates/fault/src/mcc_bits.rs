//! Word-parallel Definition-2 (MCC) label sweeps.
//!
//! Each MCC label plane has the rule "fault-free node whose two `dirs`
//! neighbors are both faulty-or-labeled", with one vertical and one
//! horizontal direction per plane. The scalar sweep in [`crate::mcc`]
//! visits nodes one at a time in an order where both neighbors are final;
//! this module keeps exactly that order but processes 64 columns per word
//! operation:
//!
//! For a row `y` whose vertical `dirs` neighbor row `yn` is already
//! labeled (packed faulty bits `f`, packed labels `l`):
//!
//! ```text
//! elig  = !f(y) & (f(yn) | l(yn))     // vertical condition holds
//! seeds = elig & shift(f(y))          // horizontal neighbor faulty now
//! l(y)  = directional_fill(elig, seeds)
//! ```
//!
//! The fill runs *against* the horizontal direction (an east-facing rule
//! propagates labels westward: a node gains the label when its **east**
//! neighbor has it), so plane `{N, E}` uses [`reach_row_west`] and plane
//! `{N, W}` uses [`reach_row`]. One pass per plane reaches the fix-point,
//! exactly like the scalar sweep — the `mcc-bits-matches-scalar` conform
//! oracle and the in-crate differential tests pin the equivalence.

use emr_mesh::{BitGrid, Direction};

use crate::reach_bits::{reach_row, reach_row_west, shift_east_row, shift_west_row};

/// Computes one label plane into `out` (retargeted to `f`'s mesh).
/// `dirs` holds exactly one vertical and one horizontal direction; `elig`
/// and `seeds` are row-sized scratch buffers.
// emr-lint: allow(A1, "word indices are bounded by words_per_row * height, the exact size of every plane buffer")
pub(crate) fn label_plane(
    f: &BitGrid,
    dirs: [Direction; 2],
    out: &mut BitGrid,
    elig: &mut Vec<u64>,
    seeds: &mut Vec<u64>,
) {
    let mesh = f.mesh();
    out.reset(mesh);
    let height = mesh.height();
    let wpr = f.words_per_row();
    elig.clear();
    elig.resize(wpr, 0);
    seeds.clear();
    seeds.resize(wpr, 0);
    // The vertical rule neighbor must be final before its dependent row:
    // a North rule looks at y+1, so rows run top-down; South bottom-up.
    let y_rev = dirs.contains(&Direction::North);
    let h_east = dirs.contains(&Direction::East);
    for yi in 0..height {
        let y = if y_rev { height - 1 - yi } else { yi };
        let yn = if y_rev { y + 1 } else { y - 1 };
        if !(0..height).contains(&yn) {
            continue; // off-mesh neighbors are fault-free: no labels
        }
        let frow = f.row(y);
        // elig: not faulty, vertical neighbor faulty-or-labeled. `!frow`
        // raises tail bits, but the neighbor rows' tails are zero.
        for (i, e) in elig.iter_mut().enumerate() {
            *e = !frow[i] & (f.row(yn)[i] | out.row(yn)[i]);
        }
        // seeds: the horizontal neighbor is faulty outright. Labeled
        // horizontal neighbors are handled by the fill below.
        if h_east {
            shift_west_row(frow, seeds);
        } else {
            shift_east_row(frow, seeds);
        }
        let mut any = 0u64;
        for (s, &e) in seeds.iter_mut().zip(elig.iter()) {
            *s &= e;
            any |= *s;
        }
        if any == 0 {
            continue;
        }
        // Labels chain against the horizontal direction through elig runs.
        if h_east {
            reach_row_west(elig, seeds);
        } else {
            reach_row(elig, seeds);
        }
        out.row_mut(y).copy_from_slice(seeds);
    }
}

/// The banded form of [`label_plane`]: splits `out` into horizontal
/// bands of whole rows and labels the bands on scoped threads, repeating
/// rounds with frozen halo rows until nothing changes.
///
/// Each band sweeps its rows in the plane's order (Gauss–Seidel within
/// the band: in-band dependency rows are already final this round) and
/// reads its one out-of-band dependency row — the row past the band in
/// the sweep direction — from a halo frozen at round start. Labels only
/// grow between rounds (the rule is monotone in the neighbor row), so a
/// round that changes nothing has every row equal to the rule applied to
/// its true neighbor row: the unique fix-point, which induction along
/// the sweep direction shows is exactly the single-pass [`label_plane`]
/// result. Information crosses one band boundary per round, so at most
/// `bands` rounds run. The skip-empty-seed shortcut stays sound under
/// re-relaxation because recomputed seeds are a superset of the stored
/// row: empty seeds imply the stored row was empty too.
// emr-lint: allow(A1, "band bounds come from row_bands_mut, so every halo and word offset stays inside the plane buffers")
pub(crate) fn label_plane_banded(
    f: &BitGrid,
    dirs: [Direction; 2],
    out: &mut BitGrid,
    bands: usize,
) {
    let mesh = f.mesh();
    let height = mesh.height() as usize;
    let wpr = f.words_per_row();
    let rows_per_band = height.div_ceil(bands.clamp(1, height));
    let n_bands = height.div_ceil(rows_per_band);
    if n_bands == 1 {
        let (mut elig, mut seeds) = (Vec::new(), Vec::new());
        label_plane(f, dirs, out, &mut elig, &mut seeds);
        return;
    }
    out.reset(mesh);
    let y_rev = dirs.contains(&Direction::North);
    let h_east = dirs.contains(&Direction::East);
    // One frozen dependency halo row per band per round.
    let mut halo = vec![0u64; n_bands * wpr];
    loop {
        for b in 0..n_bands {
            let r0 = b * rows_per_band;
            let r1 = (r0 + rows_per_band).min(height);
            let dst = &mut halo[b * wpr..(b + 1) * wpr];
            // A North-rule sweep runs top-down: the band's edge row r1−1
            // depends on row r1. A South-rule sweep depends on r0−1.
            let src = if y_rev {
                (r1 < height).then_some(r1)
            } else {
                r0.checked_sub(1)
            };
            match src {
                Some(y) => dst.copy_from_slice(out.row(i32::try_from(y).unwrap_or(i32::MAX))),
                None => dst.fill(0),
            }
        }
        let mut changed = false;
        std::thread::scope(|s| {
            let workers: Vec<_> = out
                .row_bands_mut(rows_per_band)
                .zip(halo.chunks(wpr))
                .enumerate()
                .map(|(b, (band, halo_row))| {
                    let r0 = b * rows_per_band;
                    s.spawn(move || label_band(f, band, r0, halo_row, y_rev, h_east))
                })
                .collect();
            for w in workers {
                // Forward band-worker panics verbatim so the original
                // failure (not a join wrapper) reaches the caller.
                changed |= match w.join() {
                    Ok(c) => c,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
            }
        });
        if !changed {
            break;
        }
    }
}

/// One round of label relaxation over one band of whole rows; the
/// per-row body mirrors [`label_plane`], with the out-of-band dependency
/// row read from `halo`. Returns whether any row changed.
// emr-lint: allow(A1, "the band label loop only touches rows y0..y1 handed to it by the banded driver")
fn label_band(
    f: &BitGrid,
    band: &mut [u64],
    r0: usize,
    halo: &[u64],
    y_rev: bool,
    h_east: bool,
) -> bool {
    let height = f.mesh().height() as usize;
    let wpr = f.words_per_row();
    let nrows = band.len() / wpr;
    let mut elig = vec![0u64; wpr];
    let mut seeds = vec![0u64; wpr];
    let mut changed = false;
    for step in 0..nrows {
        let r = if y_rev { nrows - 1 - step } else { step };
        let y = r0 + r;
        let yn = if y_rev { y + 1 } else { y.wrapping_sub(1) };
        if yn >= height {
            continue; // off-mesh neighbors are fault-free: no labels
        }
        let frow = f.row(i32::try_from(y).unwrap_or(i32::MAX));
        let fn_row = f.row(i32::try_from(yn).unwrap_or(i32::MAX));
        let rn = if y_rev { r + 1 } else { r.wrapping_sub(1) };
        for (i, e) in elig.iter_mut().enumerate() {
            let out_n = if rn < nrows {
                band[rn * wpr + i]
            } else {
                halo[i]
            };
            *e = !frow[i] & (fn_row[i] | out_n);
        }
        if h_east {
            shift_west_row(frow, &mut seeds);
        } else {
            shift_east_row(frow, &mut seeds);
        }
        let mut any = 0u64;
        for (s, &e) in seeds.iter_mut().zip(elig.iter()) {
            *s &= e;
            any |= *s;
        }
        if any == 0 {
            continue;
        }
        if h_east {
            reach_row_west(&elig, &mut seeds);
        } else {
            reach_row(&elig, &mut seeds);
        }
        if band[r * wpr..(r + 1) * wpr] != seeds[..wpr] {
            band[r * wpr..(r + 1) * wpr].copy_from_slice(&seeds[..wpr]);
            changed = true;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use emr_mesh::{Coord, Mesh};

    #[test]
    fn corner_pocket_labels_type_one_useless() {
        // Faults at (2,3) and (3,2): (2,2) has its north and east
        // neighbors faulty → labeled under the {N, E} plane.
        let mesh = Mesh::square(5);
        let mut f = BitGrid::new(mesh);
        f.set(Coord::new(2, 3), true);
        f.set(Coord::new(3, 2), true);
        let mut out = BitGrid::new(Mesh::new(1, 1));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        label_plane(
            &f,
            [Direction::North, Direction::East],
            &mut out,
            &mut a,
            &mut b,
        );
        assert_eq!(out.get(Coord::new(2, 2)), Some(true));
        assert_eq!(out.count_ones(), 1);
        // The mirrored {N, W} plane labels nothing here.
        label_plane(
            &f,
            [Direction::North, Direction::West],
            &mut out,
            &mut a,
            &mut b,
        );
        assert_eq!(out.count_ones(), 0);
    }

    #[test]
    fn staircase_chains_through_the_fill() {
        // The diagonal staircase from the scalar tests: pockets chain.
        let mesh = Mesh::square(6);
        let mut f = BitGrid::new(mesh);
        for (x, y) in [(1, 4), (2, 3), (3, 2), (4, 1)] {
            f.set(Coord::new(x, y), true);
        }
        let mut out = BitGrid::new(Mesh::new(1, 1));
        let (mut a, mut b) = (Vec::new(), Vec::new());
        label_plane(
            &f,
            [Direction::North, Direction::East],
            &mut out,
            &mut a,
            &mut b,
        );
        for (x, y) in [(1, 3), (2, 2), (3, 1)] {
            assert_eq!(out.get(Coord::new(x, y)), Some(true), "({x},{y})");
        }
        label_plane(
            &f,
            [Direction::South, Direction::West],
            &mut out,
            &mut a,
            &mut b,
        );
        for (x, y) in [(2, 4), (3, 3), (4, 2)] {
            assert_eq!(out.get(Coord::new(x, y)), Some(true), "({x},{y})");
        }
    }
}
