//! Word-parallel (bit-packed) monotone-reachability kernels.
//!
//! The scalar oracle in [`crate::reach`] fills a boolean DP table one node
//! at a time. Packing each row of the route rectangle into `u64` words
//! (see [`BitGrid`]) turns the recurrence
//!
//! ```text
//! reach(x, y) = open(x, y) && (reach(x, y−1) || reach(x−1, y))
//! ```
//!
//! into three word-parallel steps per row — the classic bitboard
//! flood-fill trick. With `south` the packed reach bits of the previous
//! row and `open` the packed non-blocked mask of this row:
//!
//! ```text
//! seed = south & open            // entries from the south
//! row  = open & (seed | east_propagate(seed, open))
//! ```
//!
//! where `east_propagate` rides the adder's carry chain: `open + seed`
//! flips exactly the open bits east of each seed up to the first closed
//! bit, so `open & ((open + seed) ^ open) | seed` is the full monotone
//! reach of the row, 64 columns per add. A carry flag extends the ripple
//! across word boundaries.
//!
//! Two oracles sit on top of [`reach_row`]:
//!
//! * [`minimal_path_exists_bits`] — drop-in replacement for
//!   [`crate::reach::minimal_path_exists`], same per-pair O(area) shape
//!   but ~64 columns per instruction, and
//! * [`ReachMap`] — four quadrant sweeps from one source answering
//!   reachability to **every** node, after which each query is an O(1)
//!   bit lookup. Build it whenever several destinations share a source.

use emr_mesh::{BitGrid, Coord, MemBytes, Mesh, Quadrant};

use crate::workspace::{with_scratch, Workspace};

/// Advances the reachability DP by one row, in place.
///
/// On entry `row` holds the packed reach bits of the southern neighbor
/// row (for the source row itself: just the source bit); `open` holds the
/// packed non-blocked mask of the current row. On exit `row` holds the
/// packed reach bits of the current row. Bit index increases eastward
/// (away from the source); both slices must have equal length and keep
/// any tail bits beyond the rectangle width zero.
pub fn reach_row(open: &[u64], row: &mut [u64]) {
    debug_assert_eq!(open.len(), row.len());
    let mut carry = false;
    for (r, &o) in row.iter_mut().zip(open) {
        let seed = *r & o;
        // `o + seed` ripples a carry through the contiguous open run east
        // of every seed; the flipped bits (xor) are exactly that run. The
        // xor drops seeds that sit inside another seed's run, so they are
        // or-ed back in. A run reaching bit 63 overflows into `carry`,
        // which re-seeds bit 0 of the next word.
        let (t, c1) = o.overflowing_add(seed);
        let (t, c2) = t.overflowing_add(u64::from(carry));
        carry = c1 || c2;
        *r = (o & (t ^ o)) | seed;
    }
}

/// The westward mirror of [`reach_row`]: propagation runs toward *lower*
/// bit indices. Implemented by bit-reversing each word and walking the
/// words high to low, so the same adder carry chain applies; the carry
/// now ripples from a word's bit 0 into the previous word's bit 63.
///
/// Used by the construction kernels ([`crate::block_bits`],
/// [`crate::mcc_bits`]) whose fills run in mesh coordinates rather than
/// the source-relative frames of the reach sweeps (those mirror the
/// coordinates instead, keeping every fill eastward).
pub fn reach_row_west(open: &[u64], row: &mut [u64]) {
    debug_assert_eq!(open.len(), row.len());
    let mut carry = false;
    for (r, &o) in row.iter_mut().rev().zip(open.iter().rev()) {
        let o = o.reverse_bits();
        let seed = r.reverse_bits() & o;
        let (t, c1) = o.overflowing_add(seed);
        let (t, c2) = t.overflowing_add(u64::from(carry));
        carry = c1 || c2;
        *r = ((o & (t ^ o)) | seed).reverse_bits();
    }
}

/// `dst[x+1] = src[x]` across the whole packed row (shift one column
/// east), rippling across word boundaries. Bits shifted past the last
/// word are dropped; callers mask against an in-mesh lane, so a bit
/// pushed into a row's tail position is harmless.
pub fn shift_east_row(src: &[u64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    let mut carry = 0u64;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s << 1 | carry;
        carry = s >> 63;
    }
}

/// `dst[x-1] = src[x]` across the whole packed row (shift one column
/// west), rippling across word boundaries; bit 0 is dropped.
pub fn shift_west_row(src: &[u64], dst: &mut [u64]) {
    debug_assert_eq!(src.len(), dst.len());
    let mut carry = 0u64;
    for (d, &s) in dst.iter_mut().zip(src).rev() {
        *d = s >> 1 | carry << 63;
        carry = s & 1;
    }
}

/// Packs one rectangle row: bit `x` of `dst` is set iff `open_at(x)` for
/// `x < width`; bits at and beyond `width` are cleared.
fn fill_open_row(dst: &mut [u64], width: i32, open_at: impl Fn(i32) -> bool) {
    let mut x = 0;
    for word in dst.iter_mut() {
        let mut bits = 0u64;
        let mut b = 0;
        while b < 64 && x < width {
            if open_at(x) {
                bits |= 1u64 << b;
            }
            b += 1;
            x += 1;
        }
        *word = bits;
    }
}

/// A mask of the low `width mod 64` bits (all ones when `width` fills the
/// word exactly).
fn low_mask(width: i32) -> u64 {
    match width % 64 {
        0 => u64::MAX,
        rem => (1u64 << rem) - 1,
    }
}

/// Bit-parallel drop-in for [`crate::reach::minimal_path_exists`]: whether
/// a minimal path from `s` to `d` exists avoiding every node for which
/// `blocked` returns true.
///
/// Same contract as the scalar oracle: `false` when either endpoint is
/// blocked or outside the mesh, `s == d` (unblocked) counts as reachable.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Mesh};
/// use emr_fault::reach_bits::minimal_path_exists_bits;
///
/// let mesh = Mesh::square(4);
/// let full_wall = |c: Coord| c.x == 1;
/// assert!(!minimal_path_exists_bits(&mesh, Coord::new(0, 0), Coord::new(3, 3), full_wall));
/// ```
pub fn minimal_path_exists_bits(
    mesh: &Mesh,
    s: Coord,
    d: Coord,
    blocked: impl Fn(Coord) -> bool,
) -> bool {
    with_scratch(|ws| minimal_path_exists_bits_with(mesh, s, d, blocked, ws))
}

/// [`minimal_path_exists_bits`] reusing a caller-owned scratch
/// [`Workspace`] for the packed rows.
// emr-lint: allow(A1, "frontier and obstacle rows share the packed width, so word offsets are always in range")
pub fn minimal_path_exists_bits_with(
    mesh: &Mesh,
    s: Coord,
    d: Coord,
    blocked: impl Fn(Coord) -> bool,
    ws: &mut Workspace,
) -> bool {
    if !mesh.contains(s) || !mesh.contains(d) || blocked(s) || blocked(d) {
        return false;
    }
    let q = Quadrant::of(s, d);
    let xs = if q.x_positive() { 1 } else { -1 };
    let ys = if q.y_positive() { 1 } else { -1 };
    let dx = (d.x - s.x).abs();
    let dy = (d.y - s.y).abs();
    let width = dx + 1;
    let words = (width as usize).div_ceil(64);
    let Workspace {
        row_open, row_cur, ..
    } = ws;
    row_open.clear();
    row_open.resize(words, 0);
    row_cur.clear();
    row_cur.resize(words, 0);
    row_cur[0] = 1; // the source seeds the carry chain of its own row
    for ry in 0..=dy {
        let ay = s.y + ys * ry;
        fill_open_row(row_open, width, |rx| {
            !blocked(Coord::new(s.x + xs * rx, ay))
        });
        reach_row(row_open, row_cur);
        if row_cur.iter().all(|&w| w == 0) {
            return false; // a sealed row kills every monotone path
        }
    }
    row_cur[dx as usize / 64] >> (dx % 64) & 1 == 1
}

/// Reachability from one source to **every** node of the mesh.
///
/// Four word-parallel quadrant sweeps (one per [`Quadrant`], each in the
/// source-relative frame with the axes mirrored toward the quadrant) fill
/// four packed [`BitGrid`]s; afterwards [`ReachMap::reachable`] is an O(1)
/// bit lookup. This is the batched ground-truth oracle: when many
/// destinations share a source — the sweep engine's per-trial series, the
/// conformance oracles, the epoch rebuild baseline — one `ReachMap` build
/// replaces a per-pair DP per destination.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Mesh};
/// use emr_fault::reach_bits::ReachMap;
/// use emr_fault::reach::minimal_path_exists;
///
/// let mesh = Mesh::square(9);
/// let blocked = |c: Coord| c.x == 4 && c.y >= 2;
/// let map = ReachMap::from_source(&mesh, mesh.center(), blocked);
/// for d in mesh.nodes() {
///     assert_eq!(
///         map.reachable(d),
///         minimal_path_exists(&mesh, mesh.center(), d, blocked),
///     );
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ReachMap {
    mesh: Mesh,
    source: Coord,
    /// False when the source itself is blocked or outside the mesh — then
    /// nothing is reachable and the grids stay empty.
    live: bool,
    /// Per-quadrant reach bits in *relative* coordinates `(|dx|, |dy|)`,
    /// indexed I, II, III, IV. Relative frames keep the row write-back a
    /// plain word copy — no per-row bit reversal for the mirrored sweeps.
    grids: [BitGrid; 4],
}

impl ReachMap {
    /// Builds the map with this thread's shared scratch workspace.
    pub fn from_source(mesh: &Mesh, source: Coord, blocked: impl Fn(Coord) -> bool) -> ReachMap {
        with_scratch(|ws| ReachMap::from_source_with(mesh, source, blocked, ws))
    }

    /// [`ReachMap::from_source`] reusing a caller-owned scratch
    /// [`Workspace`] for the packed obstacle grid and DP rows.
    pub fn from_source_with(
        mesh: &Mesh,
        source: Coord,
        blocked: impl Fn(Coord) -> bool,
        ws: &mut Workspace,
    ) -> ReachMap {
        let unit = Mesh::new(1, 1);
        let mut map = ReachMap {
            mesh: *mesh,
            source,
            live: false,
            grids: [
                BitGrid::new(unit),
                BitGrid::new(unit),
                BitGrid::new(unit),
                BitGrid::new(unit),
            ],
        };
        map.rebuild_with(mesh, source, blocked, ws);
        map
    }

    /// Recomputes the map in place for a (possibly different) mesh,
    /// source, and obstacle set, reusing this map's grid allocations.
    pub fn rebuild_with(
        &mut self,
        mesh: &Mesh,
        source: Coord,
        blocked: impl Fn(Coord) -> bool,
        ws: &mut Workspace,
    ) {
        self.mesh = *mesh;
        self.source = source;
        self.live = mesh.contains(source) && !blocked(source);
        if !self.live {
            return;
        }
        // Pack the obstacle predicate once (one closure call per node);
        // the four sweeps below then run purely on words.
        let Workspace {
            packed,
            row_open,
            row_cur,
            ..
        } = ws;
        packed.refill_from_blocked(*mesh, &blocked);
        self.sweep(packed, row_open, row_cur);
    }

    /// Builds the map from an already-packed obstacle grid — no per-node
    /// predicate calls at all, so the whole build runs at word speed.
    /// This is the per-trial fast path: the sweep harness hands in
    /// [`crate::FaultSet::packed`] directly.
    pub fn from_packed(source: Coord, blocked: &BitGrid) -> ReachMap {
        with_scratch(|ws| ReachMap::from_packed_with(source, blocked, ws))
    }

    /// [`ReachMap::from_packed`] reusing a caller-owned scratch
    /// [`Workspace`] for the DP rows.
    pub fn from_packed_with(source: Coord, blocked: &BitGrid, ws: &mut Workspace) -> ReachMap {
        let unit = Mesh::new(1, 1);
        let mut map = ReachMap {
            mesh: blocked.mesh(),
            source,
            live: false,
            grids: [
                BitGrid::new(unit),
                BitGrid::new(unit),
                BitGrid::new(unit),
                BitGrid::new(unit),
            ],
        };
        map.rebuild_from_packed_with(source, blocked, ws);
        map
    }

    /// The [`ReachMap::rebuild_with`] counterpart of
    /// [`ReachMap::from_packed`]: recomputes in place from a packed
    /// obstacle grid, reusing this map's allocations.
    pub fn rebuild_from_packed_with(
        &mut self,
        source: Coord,
        blocked: &BitGrid,
        ws: &mut Workspace,
    ) {
        self.mesh = blocked.mesh();
        self.source = source;
        self.live = self.mesh.contains(source) && blocked.get(source) == Some(false);
        if !self.live {
            return;
        }
        self.sweep(blocked, &mut ws.row_open, &mut ws.row_cur);
    }

    fn sweep(&mut self, packed: &BitGrid, row_open: &mut Vec<u64>, row_cur: &mut Vec<u64>) {
        for (grid, &q) in self.grids.iter_mut().zip(Quadrant::ALL.iter()) {
            sweep_quadrant(grid, q, self.source, self.mesh, packed, row_open, row_cur);
        }
    }

    /// [`ReachMap::from_packed`] with the four quadrant sweeps run on
    /// scoped threads — intra-mesh parallelism for giant meshes. Each
    /// sweep owns its quadrant grid and scratch rows, so the result is
    /// bit-identical to the sequential build (the sweeps never share
    /// state). The within-quadrant row recurrence is strictly sequential
    /// (row `ry` seeds row `ry+1`'s carry chain), so quadrants — not row
    /// bands — are the natural parallel grain here.
    pub fn from_packed_parallel(source: Coord, blocked: &BitGrid) -> ReachMap {
        let mesh = blocked.mesh();
        let unit = Mesh::new(1, 1);
        let mut map = ReachMap {
            mesh,
            source,
            live: mesh.contains(source) && blocked.get(source) == Some(false),
            grids: [
                BitGrid::new(unit),
                BitGrid::new(unit),
                BitGrid::new(unit),
                BitGrid::new(unit),
            ],
        };
        if !map.live {
            return map;
        }
        std::thread::scope(|s| {
            for (grid, &q) in map.grids.iter_mut().zip(Quadrant::ALL.iter()) {
                s.spawn(move || {
                    let (mut row_open, mut row_cur) = (Vec::new(), Vec::new());
                    sweep_quadrant(grid, q, source, mesh, blocked, &mut row_open, &mut row_cur);
                });
            }
        });
        map
    }

    /// The source this map was built from.
    pub fn source(&self) -> Coord {
        self.source
    }

    /// The mesh this map covers.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Whether a minimal path from the source to `d` exists — identical
    /// to [`crate::reach::minimal_path_exists`] for the same obstacle set.
    pub fn reachable(&self, d: Coord) -> bool {
        if !self.live || !self.mesh.contains(d) {
            return false;
        }
        let q = Quadrant::of(self.source, d);
        let rel = Coord::new((d.x - self.source.x).abs(), (d.y - self.source.y).abs());
        let gi = match q {
            Quadrant::I => 0,
            Quadrant::II => 1,
            Quadrant::III => 2,
            Quadrant::IV => 3,
        };
        self.grids[gi].get(rel) == Some(true)
    }

    /// The number of mesh nodes reachable from the source (the source
    /// itself included when it is open).
    pub fn count_reachable(&self) -> usize {
        self.mesh.nodes().filter(|&d| self.reachable(d)).count()
    }
}

impl MemBytes for ReachMap {
    /// The four packed quadrant grids (together about one bit per node
    /// plus the overlap of the shared source row and column).
    fn mem_bytes(&self) -> u64 {
        self.grids.iter().map(MemBytes::mem_bytes).sum()
    }
}

/// One quadrant's reachability sweep: resets `grid` to the quadrant's
/// relative frame and fills it row by row with the carry-chain kernel.
/// `row_open`/`row_cur` are row-sized scratch buffers.
fn sweep_quadrant(
    grid: &mut BitGrid,
    q: Quadrant,
    source: Coord,
    mesh: Mesh,
    packed: &BitGrid,
    row_open: &mut Vec<u64>,
    row_cur: &mut Vec<u64>,
) {
    let ys = if q.y_positive() { 1 } else { -1 };
    let qw = if q.x_positive() {
        mesh.width() - source.x
    } else {
        source.x + 1
    };
    let qh = if q.y_positive() {
        mesh.height() - source.y
    } else {
        source.y + 1
    };
    grid.reset(Mesh::new(qw, qh));
    let words = grid.words_per_row();
    row_open.clear();
    row_open.resize(words, 0);
    row_cur.clear();
    row_cur.resize(words, 0);
    row_cur[0] = 1; // the source seeds its own row
    for ry in 0..qh {
        let from = Coord::new(source.x, source.y + ys * ry);
        if q.x_positive() {
            packed.span_east(from, qw, row_open);
        } else {
            packed.span_west(from, qw, row_open);
        }
        // The packed grid holds *blocked* bits; open = complement
        // within the quadrant width.
        for w in row_open.iter_mut() {
            *w = !*w;
        }
        row_open[words - 1] &= low_mask(qw);
        reach_row(row_open, row_cur);
        if row_cur.iter().all(|&w| w == 0) {
            break; // rows beyond a sealed row stay all-zero
        }
        grid.row_mut(ry).copy_from_slice(row_cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::minimal_path_exists;

    /// Every (pair oracle, map lookup) agrees with the scalar DP over all
    /// destinations from `s` under `blocked`.
    fn assert_matches_scalar(mesh: &Mesh, s: Coord, blocked: impl Fn(Coord) -> bool + Copy) {
        let map = ReachMap::from_source(mesh, s, blocked);
        for d in mesh.nodes() {
            let want = minimal_path_exists(mesh, s, d, blocked);
            assert_eq!(
                minimal_path_exists_bits(mesh, s, d, blocked),
                want,
                "pair oracle s={s} d={d}"
            );
            assert_eq!(map.reachable(d), want, "map lookup s={s} d={d}");
        }
    }

    #[test]
    fn reach_row_propagates_east_through_open_runs() {
        // One word: open 0b0111_0110, seed at bit 1 → bits 1..=2 reach,
        // the closed bit 3 stops the ripple, bits 4..=6 stay dark.
        let open = [0b0111_0110u64];
        let mut row = [0b0000_0010u64];
        reach_row(&open, &mut row);
        assert_eq!(row[0], 0b0000_0110);
    }

    #[test]
    fn reach_row_carries_across_word_boundaries() {
        // Open run covering bits 60..=63 of word 0 and 0..=2 of word 1,
        // seeded at bit 60: the carry must light up word 1's low run.
        let open = [0b1111u64 << 60, 0b0111u64];
        let mut row = [1u64 << 60, 0];
        reach_row(&open, &mut row);
        assert_eq!(row, [0b1111u64 << 60, 0b0111]);
        // Same shapes but word 1's bit 0 closed: the carry dies.
        let open = [0b1111u64 << 60, 0b0110u64];
        let mut row = [1u64 << 60, 0];
        reach_row(&open, &mut row);
        assert_eq!(row, [0b1111u64 << 60, 0]);
    }

    #[test]
    fn reach_row_multiple_seeds_in_one_run_survive() {
        // The naive `o & !(o + s)` identity drops the east seed; the xor
        // form must keep both.
        let open = [0b1111u64];
        let mut row = [0b0101u64];
        reach_row(&open, &mut row);
        assert_eq!(row[0], 0b1111);
    }

    #[test]
    fn reach_row_west_propagates_toward_bit_zero() {
        // Open 0b0110_1110, seed at bit 3 → bits 1..=3 light up; the
        // closed bit 0 and the gap at bit 4 stop the fill.
        let open = [0b0110_1110u64];
        let mut row = [0b0000_1000u64];
        reach_row_west(&open, &mut row);
        assert_eq!(row[0], 0b0000_1110);
    }

    #[test]
    fn reach_row_west_carries_across_word_boundaries() {
        // Open run covering bits 62..=63 of word 0 and 0..=1 of word 1,
        // seeded at word 1 bit 1: the borrow must light word 0's high run.
        let open = [0b11u64 << 62, 0b11u64];
        let mut row = [0, 0b10u64];
        reach_row_west(&open, &mut row);
        assert_eq!(row, [0b11u64 << 62, 0b11]);
        // Close word 0's bit 63: the cross-word fill dies.
        let open = [0b01u64 << 62, 0b11u64];
        let mut row = [0, 0b10u64];
        reach_row_west(&open, &mut row);
        assert_eq!(row, [0, 0b11]);
    }

    #[test]
    fn reach_row_west_mirrors_reach_row() {
        // On mirrored inputs the two kernels must produce mirrored output.
        let open = [0x00FF_33AA_0F0F_5935u64, 0xFFF0_0F0F_1234_9ABCu64];
        let seeds = [
            open[0] & 0x0000_1200_0101_0010u64,
            open[1] & 0x0100_0001_0200_1000u64,
        ];
        let mut east = seeds;
        reach_row(&open, &mut east);
        // Build the bit-reversed, word-swapped mirror.
        let open_m = [open[1].reverse_bits(), open[0].reverse_bits()];
        let mut west = [seeds[1].reverse_bits(), seeds[0].reverse_bits()];
        reach_row_west(&open_m, &mut west);
        assert_eq!(west, [east[1].reverse_bits(), east[0].reverse_bits()]);
    }

    #[test]
    fn shift_rows_move_bits_across_words() {
        let src = [1u64 << 63, 0b1u64];
        let mut dst = [0u64; 2];
        shift_east_row(&src, &mut dst);
        assert_eq!(dst, [0, 0b11], "bit 63 carries into word 1's bit 0");
        shift_west_row(&src, &mut dst);
        assert_eq!(
            dst,
            [1 << 62 | 1 << 63, 0],
            "word 1's bit 0 carries into bit 63"
        );
        let src = [0b1u64, 0];
        shift_west_row(&src, &mut dst);
        assert_eq!(dst, [0, 0], "bit 0 falls off the west edge");
    }

    #[test]
    fn from_packed_matches_closure_build() {
        use emr_mesh::BitGrid;
        for (w, h) in [(9, 9), (130, 4), (1, 7), (70, 1)] {
            let mesh = Mesh::new(w, h);
            let blocked = |c: Coord| (c.x * 13 + c.y * 7) % 5 == 0 && c != Coord::new(w / 2, h / 2);
            let packed = BitGrid::from_blocked(mesh, blocked);
            let s = Coord::new(w / 2, h / 2);
            let from_closure = ReachMap::from_source(&mesh, s, blocked);
            let from_packed = ReachMap::from_packed(s, &packed);
            for d in mesh.nodes() {
                assert_eq!(
                    from_packed.reachable(d),
                    from_closure.reachable(d),
                    "{w}x{h} d={d}"
                );
            }
            // Blocked source: nothing reachable.
            let mut dead = BitGrid::new(mesh);
            dead.set(s, true);
            assert_eq!(ReachMap::from_packed(s, &dead).count_reachable(), 0);
        }
    }

    #[test]
    fn parallel_build_is_bit_identical_to_sequential() {
        use emr_mesh::BitGrid;
        // Word-boundary widths, corner and center sources, and a blocked
        // source; the parallel build must match from_packed exactly.
        for (w, h) in [(9, 9), (130, 4), (65, 65), (1, 7), (70, 1)] {
            let mesh = Mesh::new(w, h);
            let packed = BitGrid::from_blocked(mesh, |c| (c.x * 13 + c.y * 7) % 5 == 0);
            for s in [
                Coord::new(w / 2, h / 2),
                Coord::new(0, 0),
                Coord::new(w - 1, h - 1),
            ] {
                let sequential = ReachMap::from_packed(s, &packed);
                let parallel = ReachMap::from_packed_parallel(s, &packed);
                assert_eq!(parallel.live, sequential.live, "{w}x{h} s={s}");
                assert_eq!(parallel.grids, sequential.grids, "{w}x{h} s={s}");
                assert_eq!(
                    parallel.count_reachable(),
                    sequential.count_reachable(),
                    "{w}x{h} s={s}"
                );
            }
        }
    }

    #[test]
    fn matches_scalar_on_clear_and_walled_meshes() {
        let mesh = Mesh::square(9);
        assert_matches_scalar(&mesh, mesh.center(), |_| false);
        assert_matches_scalar(&mesh, mesh.center(), |c| c.x == 2);
        assert_matches_scalar(&mesh, Coord::new(0, 0), |c| {
            (c.x + c.y) % 3 == 0 && c != Coord::ORIGIN
        });
    }

    #[test]
    fn matches_scalar_across_word_boundary_widths() {
        for width in [63, 64, 65, 130] {
            let mesh = Mesh::new(width, 3);
            assert_matches_scalar(&mesh, Coord::new(1, 1), |c| c.x % 61 == 59);
        }
    }

    #[test]
    fn degenerate_rectangles() {
        // Single row: reachability is pure east/west propagation.
        let mesh = Mesh::new(70, 1);
        assert_matches_scalar(&mesh, Coord::new(35, 0), |c| c.x == 10 || c.x == 64);
        // Single column.
        let mesh = Mesh::new(1, 70);
        assert_matches_scalar(&mesh, Coord::new(0, 35), |c| c.y == 10 || c.y == 64);
    }

    #[test]
    fn blocked_or_outside_endpoints() {
        let mesh = Mesh::square(5);
        let s = Coord::new(2, 2);
        let blocked = |c: Coord| c == Coord::new(4, 4) || c == s;
        assert!(!minimal_path_exists_bits(
            &mesh,
            s,
            Coord::new(0, 0),
            blocked
        ));
        let map = ReachMap::from_source(&mesh, s, blocked);
        assert_eq!(map.count_reachable(), 0, "blocked source reaches nothing");
        assert!(!map.reachable(Coord::new(9, 9)), "outside mesh");
        assert!(!minimal_path_exists_bits(
            &mesh,
            Coord::new(0, 0),
            Coord::new(9, 9),
            |_| false
        ));
    }

    #[test]
    fn count_reachable_on_clear_mesh_is_node_count() {
        let mesh = Mesh::new(13, 7);
        let map = ReachMap::from_source(&mesh, Coord::new(5, 3), |_| false);
        assert_eq!(map.count_reachable(), mesh.node_count());
    }

    #[test]
    fn rebuild_reuses_map_across_meshes() {
        let mut ws = Workspace::new();
        let mesh_a = Mesh::square(8);
        let blocked_a = |c: Coord| c.x == 3 && c.y < 6;
        let mut map = ReachMap::from_source_with(&mesh_a, Coord::new(0, 0), blocked_a, &mut ws);
        let mesh_b = Mesh::new(130, 4);
        let blocked_b = |c: Coord| c.x == 100;
        map.rebuild_with(&mesh_b, Coord::new(129, 3), blocked_b, &mut ws);
        for d in mesh_b.nodes() {
            assert_eq!(
                map.reachable(d),
                minimal_path_exists(&mesh_b, Coord::new(129, 3), d, blocked_b),
                "d={d}"
            );
        }
    }
}
