//! Exact monotone-reachability oracle.
//!
//! A minimal path between `s` and `d` moves only in the two preferred
//! directions, so it stays inside the rectangle spanned by `s` and `d` and
//! visits its nodes in a monotone order. Existence of a minimal path that
//! avoids a blocked-node set is therefore a simple dynamic program over
//! that rectangle. This is the "existence of a minimal path" / optimal
//! ground truth every figure of the paper compares against (it is
//! equivalent to Wang's necessary-and-sufficient condition — see
//! [`crate::coverage`] — but needs no block structure).

use emr_mesh::{Coord, Frame, Grid, Mesh, Path, Rect};

use crate::workspace::{with_scratch, Workspace};

/// Whether a minimal path from `s` to `d` exists that avoids every node for
/// which `blocked` returns true.
///
/// Returns `false` when either endpoint is blocked or outside the mesh.
/// `s == d` (with `s` unblocked) counts as reachable.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Mesh};
/// use emr_fault::reach::minimal_path_exists;
///
/// let mesh = Mesh::square(4);
/// let wall = |c: Coord| c.x == 1 && c.y <= 2; // a 3-node wall
/// assert!(minimal_path_exists(&mesh, Coord::new(0, 0), Coord::new(3, 3), wall));
/// let full_wall = |c: Coord| c.x == 1; // crosses the whole rectangle
/// assert!(!minimal_path_exists(&mesh, Coord::new(0, 0), Coord::new(3, 3), full_wall));
/// ```
pub fn minimal_path_exists(
    mesh: &Mesh,
    s: Coord,
    d: Coord,
    blocked: impl Fn(Coord) -> bool,
) -> bool {
    with_scratch(|ws| minimal_path_exists_with(mesh, s, d, blocked, ws))
}

/// [`minimal_path_exists`] reusing a caller-owned scratch [`Workspace`]
/// for the DP table.
pub fn minimal_path_exists_with(
    mesh: &Mesh,
    s: Coord,
    d: Coord,
    blocked: impl Fn(Coord) -> bool,
    ws: &mut Workspace,
) -> bool {
    reach_table_into(mesh, s, d, &blocked, &mut ws.table).is_some_and(|frame| {
        let rd = frame.to_rel(d);
        ws.table[Coord::new(rd.x, rd.y)]
    })
}

/// Constructs a minimal path from `s` to `d` avoiding `blocked`, if one
/// exists. The returned path starts at `s`, ends at `d`, is contiguous,
/// simple, minimal, and avoids every blocked node.
pub fn minimal_path(
    mesh: &Mesh,
    s: Coord,
    d: Coord,
    blocked: impl Fn(Coord) -> bool,
) -> Option<Path> {
    with_scratch(|ws| minimal_path_with(mesh, s, d, blocked, ws))
}

/// [`minimal_path`] reusing a caller-owned scratch [`Workspace`] for the
/// DP table (the returned [`Path`] is always freshly allocated).
pub fn minimal_path_with(
    mesh: &Mesh,
    s: Coord,
    d: Coord,
    blocked: impl Fn(Coord) -> bool,
    ws: &mut Workspace,
) -> Option<Path> {
    let frame = reach_table_into(mesh, s, d, &blocked, &mut ws.table)?;
    let Workspace { table, rev, .. } = ws;
    let rd = frame.to_rel(d);
    if !table[rd] {
        return None;
    }
    // Walk backwards from the destination through reachable predecessors,
    // into the workspace buffer — only the returned Path allocates.
    rev.clear();
    rev.push(rd);
    let mut cur = rd;
    while cur != Coord::ORIGIN {
        let west = Coord::new(cur.x - 1, cur.y);
        cur = if cur.x > 0 && table[west] {
            west
        } else {
            Coord::new(cur.x, cur.y - 1)
        };
        rev.push(cur);
    }
    Some(rev.iter().rev().map(|&c| frame.to_abs(c)).collect())
}

/// Forward DP over the normalized rectangle: `table[c]` says whether a
/// monotone path from the source reaches relative coordinate `c`. Fills
/// the caller's table in place (reset to the route rectangle's size).
fn reach_table_into(
    mesh: &Mesh,
    s: Coord,
    d: Coord,
    blocked: &impl Fn(Coord) -> bool,
    table: &mut Grid<bool>,
) -> Option<Frame> {
    if !mesh.contains(s) || !mesh.contains(d) || blocked(s) || blocked(d) {
        return None;
    }
    let frame = Frame::normalizing(s, d);
    let rd = frame.to_rel(d);
    // A grid over the relative rectangle [0..rd.x, 0..rd.y]; reuse Grid by
    // treating it as a (rd.x+1) × (rd.y+1) mesh.
    let table_mesh = Mesh::new(rd.x + 1, rd.y + 1);
    table.reset(table_mesh, false);
    for rc in Rect::new(0, rd.x, 0, rd.y).iter() {
        let abs = frame.to_abs(rc);
        if !mesh.contains(abs) || blocked(abs) {
            continue;
        }
        let reachable = (rc == Coord::ORIGIN)
            || (rc.x > 0 && table[Coord::new(rc.x - 1, rc.y)])
            || (rc.y > 0 && table[Coord::new(rc.x, rc.y - 1)]);
        table[rc] = reachable;
    }
    Some(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocked_set(coords: &[(i32, i32)]) -> impl Fn(Coord) -> bool + '_ {
        move |c| coords.iter().any(|&(x, y)| Coord::new(x, y) == c)
    }

    #[test]
    fn clear_mesh_is_always_reachable() {
        let mesh = Mesh::square(6);
        for d in mesh.nodes() {
            assert!(minimal_path_exists(&mesh, Coord::new(2, 3), d, |_| false));
        }
    }

    #[test]
    fn blocked_endpoints_fail() {
        let mesh = Mesh::square(4);
        let s = Coord::new(0, 0);
        let d = Coord::new(3, 3);
        assert!(!minimal_path_exists(&mesh, s, d, |c| c == s));
        assert!(!minimal_path_exists(&mesh, s, d, |c| c == d));
        assert!(minimal_path(&mesh, s, d, |c| c == s).is_none());
    }

    #[test]
    fn out_of_mesh_endpoints_fail() {
        let mesh = Mesh::square(4);
        assert!(!minimal_path_exists(
            &mesh,
            Coord::new(0, 0),
            Coord::new(9, 0),
            |_| false
        ));
    }

    #[test]
    fn wall_blocks_only_when_it_crosses_the_rectangle() {
        let mesh = Mesh::square(5);
        let s = Coord::new(0, 0);
        let d = Coord::new(4, 2);
        // Vertical wall at x=2 covering rows 0..=1 leaves row 2 open.
        let partial = blocked_set(&[(2, 0), (2, 1)]);
        assert!(minimal_path_exists(&mesh, s, d, partial));
        // Covering rows 0..=2 seals the rectangle.
        let full = blocked_set(&[(2, 0), (2, 1), (2, 2)]);
        assert!(!minimal_path_exists(&mesh, s, d, full));
    }

    #[test]
    fn constructed_path_is_minimal_and_avoiding() {
        let mesh = Mesh::square(6);
        let s = Coord::new(0, 0);
        let d = Coord::new(5, 4);
        let blocked = blocked_set(&[(1, 0), (1, 1), (1, 2), (3, 4)]);
        let p = minimal_path(&mesh, s, d, &blocked).expect("path exists");
        assert_eq!(p.source(), Some(s));
        assert_eq!(p.dest(), Some(d));
        assert!(p.is_minimal());
        assert!(p.is_simple());
        assert!(p.avoids(&blocked));
    }

    #[test]
    fn works_in_all_quadrants() {
        let mesh = Mesh::square(7);
        let s = mesh.center();
        let blocked = blocked_set(&[(2, 2), (4, 4), (2, 4), (4, 2)]);
        for d in [
            Coord::new(6, 6),
            Coord::new(0, 6),
            Coord::new(0, 0),
            Coord::new(6, 0),
        ] {
            let p = minimal_path(&mesh, s, d, &blocked).expect("path exists");
            assert!(p.is_minimal());
            assert!(p.avoids(&blocked));
        }
    }

    #[test]
    fn source_equals_dest() {
        let mesh = Mesh::square(3);
        let s = Coord::new(1, 1);
        assert!(minimal_path_exists(&mesh, s, s, |_| false));
        let p = minimal_path(&mesh, s, s, |_| false).unwrap();
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn axis_destination() {
        let mesh = Mesh::square(5);
        let s = Coord::new(0, 2);
        let d = Coord::new(4, 2);
        assert!(minimal_path_exists(&mesh, s, d, |_| false));
        // A single blocked node on the only row kills the path.
        assert!(!minimal_path_exists(&mesh, s, d, blocked_set(&[(2, 2)])));
    }
}
