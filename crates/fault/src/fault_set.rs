use serde::{Deserialize, Serialize};

use emr_mesh::{BitGrid, Coord, MemBytes, Mesh};

/// A set of faulty nodes in a mesh.
///
/// Keeps a packed membership bitset (one bit per node, O(1) queries
/// during labeling and the direct input of the word-parallel kernels)
/// and the fault list in insertion order (for deterministic iteration).
/// At giant mesh sizes the bitset is the only per-node storage — an
/// eighth of a byte per node.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Mesh};
/// use emr_fault::FaultSet;
///
/// let mesh = Mesh::square(4);
/// let faults = FaultSet::from_coords(mesh, [Coord::new(1, 1), Coord::new(2, 2)]);
/// assert_eq!(faults.len(), 2);
/// assert!(faults.is_faulty(Coord::new(1, 1)));
/// assert!(!faults.is_faulty(Coord::new(0, 0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    mesh: Mesh,
    packed: BitGrid,
    list: Vec<Coord>,
}

impl FaultSet {
    /// Creates an empty fault set over `mesh`.
    pub fn new(mesh: Mesh) -> Self {
        FaultSet {
            mesh,
            packed: BitGrid::new(mesh),
            list: Vec::new(),
        }
    }

    /// Creates a fault set from explicit coordinates; duplicates are kept
    /// once.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate lies outside the mesh.
    pub fn from_coords(mesh: Mesh, coords: impl IntoIterator<Item = Coord>) -> Self {
        let mut set = FaultSet::new(mesh);
        for c in coords {
            set.insert(c);
        }
        set
    }

    /// The mesh the faults live in.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// Marks `c` faulty; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `c` lies outside the mesh.
    pub fn insert(&mut self, c: Coord) -> bool {
        assert!(self.mesh.contains(c), "fault {c} outside mesh");
        if self.packed.get(c) == Some(true) {
            return false;
        }
        self.packed.set(c, true);
        self.list.push(c);
        true
    }

    /// The faults as a packed bit grid (bit set ⟺ faulty), maintained on
    /// every insert. The word-parallel construction kernels and
    /// [`crate::reach_bits::ReachMap::from_packed`] start from this grid
    /// directly, skipping any per-node repacking.
    pub fn packed(&self) -> &BitGrid {
        &self.packed
    }

    /// Whether `c` is faulty. Coordinates outside the mesh are never faulty.
    pub fn is_faulty(&self, c: Coord) -> bool {
        self.packed.get(c).unwrap_or(false)
    }

    /// The number of faulty nodes.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether there are no faults.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Iterates over the faulty nodes in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        self.list.iter().copied()
    }
}

impl MemBytes for FaultSet {
    fn mem_bytes(&self) -> u64 {
        self.packed.mem_bytes() + (self.list.len() * std::mem::size_of::<Coord>()) as u64
    }
}

impl Extend<Coord> for FaultSet {
    fn extend<I: IntoIterator<Item = Coord>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedupes() {
        let mesh = Mesh::square(3);
        let mut set = FaultSet::new(mesh);
        assert!(set.insert(Coord::new(1, 1)));
        assert!(!set.insert(Coord::new(1, 1)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn out_of_mesh_fault_panics() {
        let mut set = FaultSet::new(Mesh::square(2));
        set.insert(Coord::new(5, 0));
    }

    #[test]
    fn off_mesh_is_never_faulty() {
        let set = FaultSet::new(Mesh::square(2));
        assert!(!set.is_faulty(Coord::new(-1, 0)));
        assert!(!set.is_faulty(Coord::new(2, 0)));
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let mesh = Mesh::square(4);
        let coords = [Coord::new(3, 3), Coord::new(0, 0), Coord::new(2, 1)];
        let set = FaultSet::from_coords(mesh, coords);
        let seen: Vec<Coord> = set.iter().collect();
        assert_eq!(seen, coords);
    }

    #[test]
    fn packed_mirrors_membership() {
        let mesh = Mesh::new(70, 3);
        let set = FaultSet::from_coords(
            mesh,
            [
                Coord::new(0, 0),
                Coord::new(63, 1),
                Coord::new(64, 1),
                Coord::new(69, 2),
            ],
        );
        for c in mesh.nodes() {
            assert_eq!(set.packed().get(c), Some(set.is_faulty(c)), "{c}");
        }
        assert_eq!(set.packed().count_ones(), set.len());
    }

    #[test]
    fn extend_trait() {
        let mut set = FaultSet::new(Mesh::square(4));
        set.extend([Coord::new(0, 0), Coord::new(1, 1)]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }
}
