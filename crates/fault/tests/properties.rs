//! Property-based tests for the fault substrate.
//!
//! These pin the paper's structural and semantic claims on randomized fault
//! configurations:
//!
//! * Definition 1 components fill their bounding rectangles (so blocks are
//!   disjoint rectangles),
//! * the MCC labeling is *exact* for minimal routing: a minimal path avoiding
//!   faulty nodes exists iff one avoiding the (larger) MCC node set exists,
//! * Wang's coverage condition on block rectangles agrees with the
//!   monotone-reachability oracle,
//! * constructed minimal paths are valid whenever existence is claimed.

use proptest::prelude::*;

use emr_fault::{coverage, inject, reach, BlockMap, FaultSet, MccMap, MccType};
use emr_mesh::{Coord, Mesh, Quadrant};

/// A random fault configuration on a small mesh, plus a source/destination
/// pair drawn from anywhere in the mesh.
/// One generated case: mesh, fault coordinates, source, destination.
type Case = (Mesh, Vec<(i32, i32)>, (i32, i32), (i32, i32));

fn config() -> impl Strategy<Value = Case> {
    (6i32..=14, 0usize..=18).prop_flat_map(|(n, k)| {
        let cell = 0..n;
        (
            Just(Mesh::square(n)),
            proptest::collection::vec((cell.clone(), cell.clone()), k),
            (cell.clone(), cell.clone()),
            (cell.clone(), cell),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn blocks_fill_their_rectangles((mesh, faults, _, _) in config()) {
        let set = FaultSet::from_coords(mesh, faults.into_iter().map(Coord::from));
        let map = BlockMap::build(&set);
        prop_assert!(map.rect_invariant_holds());
        // Disjointness follows from the invariant, but check directly too.
        let rects = map.rects();
        for (i, a) in rects.iter().enumerate() {
            for b in &rects[i + 1..] {
                prop_assert!(!a.intersects(b), "blocks {a} and {b} overlap");
            }
        }
    }

    #[test]
    fn mcc_is_contained_in_blocks((mesh, faults, _, _) in config()) {
        let set = FaultSet::from_coords(mesh, faults.into_iter().map(Coord::from));
        let blocks = BlockMap::build(&set);
        for ty in MccType::ALL {
            let mcc = MccMap::build(&set, ty);
            for c in mesh.nodes() {
                if mcc.is_blocked(c) {
                    prop_assert!(blocks.is_blocked(c));
                }
            }
        }
    }

    /// The MCC labeling is exact: avoiding MCC nodes costs nothing relative
    /// to avoiding only the faulty nodes, for sources/destinations with
    /// fault-free MCC status (the paper's standing assumption).
    #[test]
    fn mcc_labeling_is_exact((mesh, faults, s, d) in config()) {
        let set = FaultSet::from_coords(mesh, faults.into_iter().map(Coord::from));
        let s = Coord::from(s);
        let d = Coord::from(d);
        let ty = MccType::for_route(s, d);
        let mcc = MccMap::build(&set, ty);
        prop_assume!(!mcc.is_blocked(s) && !mcc.is_blocked(d));
        let via_faulty = reach::minimal_path_exists(&mesh, s, d, |c| set.is_faulty(c));
        let via_mcc = reach::minimal_path_exists(&mesh, s, d, |c| mcc.is_blocked(c));
        prop_assert_eq!(via_faulty, via_mcc);
    }

    /// Wang's necessary-and-sufficient condition on block rectangles agrees
    /// with the exact oracle on the block-node obstacle set.
    #[test]
    fn wang_coverage_matches_oracle((mesh, faults, s, d) in config()) {
        let set = FaultSet::from_coords(mesh, faults.into_iter().map(Coord::from));
        let blocks = BlockMap::build(&set);
        let s = Coord::from(s);
        let d = Coord::from(d);
        prop_assume!(!blocks.is_blocked(s) && !blocks.is_blocked(d));
        let by_coverage =
            coverage::minimal_path_exists_by_coverage(blocks.rects(), s, d);
        let by_oracle = reach::minimal_path_exists(&mesh, s, d, |c| blocks.is_blocked(c));
        prop_assert_eq!(by_coverage, by_oracle);
    }

    /// Whenever the oracle says a path exists, the constructed path is a
    /// valid, simple, minimal, obstacle-avoiding walk between the endpoints.
    #[test]
    fn constructed_paths_are_valid((mesh, faults, s, d) in config()) {
        let set = FaultSet::from_coords(mesh, faults.into_iter().map(Coord::from));
        let s = Coord::from(s);
        let d = Coord::from(d);
        let blocked = |c: Coord| set.is_faulty(c);
        match reach::minimal_path(&mesh, s, d, blocked) {
            Some(p) => {
                prop_assert_eq!(p.source(), Some(s));
                prop_assert_eq!(p.dest(), Some(d));
                prop_assert!(p.is_minimal());
                prop_assert!(p.is_simple());
                prop_assert!(p.avoids(blocked));
            }
            None => {
                prop_assert!(!reach::minimal_path_exists(&mesh, s, d, blocked));
            }
        }
    }

    /// Type-one and type-two decompositions are mirror images: flipping the
    /// mesh east-west maps one onto the other.
    #[test]
    fn mcc_types_are_mirror_images((mesh, faults, _, _) in config()) {
        let set = FaultSet::from_coords(mesh, faults.iter().map(|&c| Coord::from(c)));
        let mirrored = FaultSet::from_coords(
            mesh,
            faults
                .iter()
                .map(|&(x, y)| Coord::new(mesh.width() - 1 - x, y)),
        );
        let one = MccMap::build(&set, MccType::One);
        let two = MccMap::build(&mirrored, MccType::Two);
        for c in mesh.nodes() {
            let m = Coord::new(mesh.width() - 1 - c.x, c.y);
            prop_assert_eq!(one.is_blocked(c), two.is_blocked(m));
        }
    }
}

/// A deterministic sweep over seeds exercising the random injector against
/// the same invariants at the paper's fault densities (scaled down).
#[test]
fn injector_configurations_uphold_invariants() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mesh = Mesh::square(24);
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = (seed as usize * 3) % 50;
        let set = inject::uniform(mesh, k, &[mesh.center()], &mut rng);
        let blocks = BlockMap::build(&set);
        assert!(blocks.rect_invariant_holds(), "seed {seed}");
        for ty in MccType::ALL {
            let mcc = MccMap::build(&set, ty);
            assert!(
                mcc.disabled_count() <= blocks.disabled_count(),
                "seed {seed}"
            );
        }
    }
}

/// Quadrant normalization consistency: reachability is invariant under the
/// frame mirrorings used by the coverage condition.
#[test]
fn coverage_in_all_quadrants_matches_oracle() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mesh = Mesh::square(15);
    let s = mesh.center();
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let set = inject::uniform(mesh, 14, &[s], &mut rng);
        let blocks = BlockMap::build(&set);
        if blocks.is_blocked(s) {
            continue;
        }
        for d in mesh.nodes() {
            if blocks.is_blocked(d) {
                continue;
            }
            let q = Quadrant::of(s, d);
            let by_coverage = coverage::minimal_path_exists_by_coverage(blocks.rects(), s, d);
            let by_oracle = reach::minimal_path_exists(&mesh, s, d, |c| blocks.is_blocked(c));
            assert_eq!(
                by_coverage, by_oracle,
                "seed {seed}, quadrant {q}, s={s}, d={d}"
            );
        }
    }
}
