//! Property tests for Wang's coverage condition as a standalone API:
//! the per-axis predicates decompose the combined condition exactly, each
//! axis individually implies unreachability against the DP oracle, and all
//! three predicates are invariant under reordering of the block slice.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom as _;
use rand::SeedableRng;

use emr_fault::{coverage, reach, BlockMap, FaultSet};
use emr_mesh::{Coord, Mesh, Rect};

/// One generated case: mesh, fault coordinates, source, destination, and a
/// shuffle seed for the reordering property.
type Case = (Mesh, Vec<(i32, i32)>, (i32, i32), (i32, i32), u64);

fn config() -> impl Strategy<Value = Case> {
    (6i32..=14, 0usize..=20).prop_flat_map(|(n, k)| {
        let cell = 0..n;
        (
            Just(Mesh::square(n)),
            proptest::collection::vec((cell.clone(), cell.clone()), k),
            (cell.clone(), cell.clone()),
            (cell.clone(), cell),
            0u64..u64::MAX,
        )
    })
}

fn model_blocks(mesh: Mesh, faults: Vec<(i32, i32)>) -> (BlockMap, Vec<Rect>) {
    let set = FaultSet::from_coords(mesh, faults.into_iter().map(Coord::from));
    let blocks = BlockMap::build(&set);
    let rects = blocks.rects().to_vec();
    (blocks, rects)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `minimal_path_exists_by_coverage` is exactly the conjunction of the
    /// two per-axis predicates being false.
    #[test]
    fn per_axis_predicates_decompose_the_condition(
        (mesh, faults, s, d, _) in config()
    ) {
        let (_, rects) = model_blocks(mesh, faults);
        let s = Coord::from(s);
        let d = Coord::from(d);
        prop_assert_eq!(
            coverage::minimal_path_exists_by_coverage(&rects, s, d),
            !coverage::covers_on_y(&rects, s, d) && !coverage::covers_on_x(&rects, s, d)
        );
    }

    /// Each axis on its own is sufficient for unreachability: whenever a
    /// covering sequence exists on x or on y, the DP finds no minimal path.
    /// (The converse — no covering on either axis implies reachability — is
    /// the iff direction already pinned in `properties.rs`.)
    #[test]
    fn each_covering_axis_implies_dp_unreachable(
        (mesh, faults, s, d, _) in config()
    ) {
        let (blocks, rects) = model_blocks(mesh, faults);
        let s = Coord::from(s);
        let d = Coord::from(d);
        prop_assume!(!blocks.is_blocked(s) && !blocks.is_blocked(d));
        let dp = reach::minimal_path_exists(&mesh, s, d, |c| blocks.is_blocked(c));
        if coverage::covers_on_y(&rects, s, d) {
            prop_assert!(!dp, "covers_on_y but DP reachable: s={s}, d={d}");
        }
        if coverage::covers_on_x(&rects, s, d) {
            prop_assert!(!dp, "covers_on_x but DP reachable: s={s}, d={d}");
        }
    }

    /// The covering search scans for *some* chain of blocks, so its answer
    /// must not depend on the order blocks appear in the slice.
    #[test]
    fn coverage_is_invariant_under_block_reordering(
        (mesh, faults, s, d, shuffle_seed) in config()
    ) {
        let (_, rects) = model_blocks(mesh, faults);
        let s = Coord::from(s);
        let d = Coord::from(d);
        let base = (
            coverage::covers_on_y(&rects, s, d),
            coverage::covers_on_x(&rects, s, d),
            coverage::minimal_path_exists_by_coverage(&rects, s, d),
        );

        let mut reversed = rects.clone();
        reversed.reverse();
        let mut shuffled = rects.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        for order in [&reversed, &shuffled] {
            prop_assert_eq!(
                base,
                (
                    coverage::covers_on_y(order, s, d),
                    coverage::covers_on_x(order, s, d),
                    coverage::minimal_path_exists_by_coverage(order, s, d),
                )
            );
        }
    }
}
