//! Differential property tests for the word-parallel reachability
//! kernels: the bit-parallel per-pair oracle and `ReachMap` lookups must
//! agree with the scalar DP on every generated case — random fault sets,
//! sources anywhere in the mesh (so all four quadrants are exercised),
//! widths straddling the 64- and 128-bit word boundaries, and degenerate
//! single-row / single-column rectangles.

use proptest::prelude::*;

use emr_fault::reach::minimal_path_exists;
use emr_fault::reach_bits::{minimal_path_exists_bits, ReachMap};
use emr_fault::FaultSet;
use emr_mesh::{Coord, Mesh};

/// Mesh shapes chosen to hit the packed kernel's edge cases: word-exact,
/// one-under, one-over, two-word and three-word widths, plus single-row
/// and single-column rectangles where east/south propagation degenerates.
const SHAPES: [(i32, i32); 9] = [
    (1, 40),
    (40, 1),
    (63, 5),
    (64, 5),
    (65, 5),
    (130, 3),
    (9, 9),
    (2, 70),
    (100, 2),
];

/// One generated case: mesh, fault coordinates, source, destination.
type Case = (Mesh, Vec<(i32, i32)>, (i32, i32), (i32, i32));

fn config() -> impl Strategy<Value = Case> {
    (0usize..SHAPES.len(), 0usize..=24).prop_flat_map(|(shape, k)| {
        let (w, h) = SHAPES[shape];
        (
            Just(Mesh::new(w, h)),
            proptest::collection::vec((0..w, 0..h), k),
            (0..w, 0..h),
            (0..w, 0..h),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// The packed per-pair oracle answers exactly like the scalar DP for
    /// arbitrary endpoint pairs (any quadrant, endpoints possibly faulty).
    #[test]
    fn pair_oracle_matches_scalar_dp((mesh, faults, s, d) in config()) {
        let set = FaultSet::from_coords(mesh, faults.into_iter().map(Coord::from));
        let s = Coord::from(s);
        let d = Coord::from(d);
        let blocked = |c: Coord| set.is_faulty(c);
        let bits = minimal_path_exists_bits(&mesh, s, d, blocked);
        let scalar = minimal_path_exists(&mesh, s, d, blocked);
        prop_assert!(bits == scalar, "s={s}, d={d}: bits={bits}, scalar={scalar}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A `ReachMap` built from one source agrees with the scalar DP on
    /// *every* destination of the mesh — the batched sweep must not lose
    /// or invent reachability anywhere, including on quadrant boundaries
    /// (shared axes) and at the source itself.
    #[test]
    fn reach_map_matches_scalar_dp_everywhere((mesh, faults, s, _) in config()) {
        let set = FaultSet::from_coords(mesh, faults.into_iter().map(Coord::from));
        let s = Coord::from(s);
        let blocked = |c: Coord| set.is_faulty(c);
        let map = ReachMap::from_source(&mesh, s, blocked);
        let mut expected_count = 0;
        for d in mesh.nodes() {
            let want = minimal_path_exists(&mesh, s, d, blocked);
            expected_count += usize::from(want);
            prop_assert!(map.reachable(d) == want, "s={s}, d={d}: want {want}");
        }
        prop_assert_eq!(map.count_reachable(), expected_count);
    }
}
