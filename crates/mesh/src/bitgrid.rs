use serde::{Deserialize, Serialize};

use crate::{Coord, Mesh};

/// One bit per node of a [`Mesh`], packed row-major into `u64` words.
///
/// A `BitGrid` is the packed sibling of [`crate::Grid<bool>`]: each mesh row
/// occupies `⌈width / 64⌉` consecutive words, bit `x mod 64` of word
/// `x / 64` holds column `x`, and the unused tail bits of a row's last word
/// are always zero. The layout makes the monotone-reachability recurrence
/// word-parallel (64 columns per AND/OR/ADD — see `emr_fault::reach_bits`)
/// and turns whole-row set operations into short word loops.
///
/// # Examples
///
/// ```
/// use emr_mesh::{BitGrid, Coord, Mesh};
///
/// let mesh = Mesh::new(130, 3); // rows span three words
/// let mut g = BitGrid::new(mesh);
/// g.set(Coord::new(129, 2), true);
/// assert_eq!(g.get(Coord::new(129, 2)), Some(true));
/// assert_eq!(g.get(Coord::new(130, 2)), None); // outside the mesh
/// assert_eq!(g.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitGrid {
    mesh: Mesh,
    words_per_row: usize,
    words: Vec<u64>,
}

/// Words needed for `len` bits.
fn words_for(len: usize) -> usize {
    len.div_ceil(64)
}

/// A mask of the low `len mod 64` bits, or all ones when `len` fills its
/// last word exactly.
fn tail_mask(len: usize) -> u64 {
    let rem = len % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// Transposes a 64×64 bit tile in place: on exit, bit `i` of `a[r]` is the
/// old bit `r` of `a[i]`. The classic recursive block swap (Hacker's
/// Delight §7-3), with the shift directions mirrored for this crate's
/// LSB-first column convention (bit 0 = lowest column index).
// emr-lint: allow(A1, "a fixed 64x64 tile: every index is masked to 0..64")
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k + j]) & m;
            a[k + j] ^= t;
            a[k] ^= t << j;
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

impl BitGrid {
    /// Creates an all-zero grid over `mesh`.
    pub fn new(mesh: Mesh) -> BitGrid {
        let words_per_row = words_for(mesh.width() as usize);
        BitGrid {
            mesh,
            words_per_row,
            words: vec![0; words_per_row * mesh.height() as usize],
        }
    }

    /// Builds a grid with the bit of every node for which `blocked`
    /// returns true set (the packed form of an obstacle predicate).
    pub fn from_blocked(mesh: Mesh, blocked: impl Fn(Coord) -> bool) -> BitGrid {
        let mut grid = BitGrid::new(mesh);
        grid.refill_from_blocked(mesh, blocked);
        grid
    }

    /// Retargets this grid to `mesh` and repacks it from `blocked`,
    /// reusing the existing allocation (the [`crate::Grid::reset`]
    /// counterpart for scratch-buffer reuse).
    pub fn refill_from_blocked(&mut self, mesh: Mesh, blocked: impl Fn(Coord) -> bool) {
        self.reset(mesh);
        let width = mesh.width() as usize;
        for y in 0..mesh.height() {
            let row = self.row_mut(y);
            for (wi, word) in row.iter_mut().enumerate() {
                let mut bits = 0u64;
                let x0 = wi * 64;
                for b in 0..64.min(width - x0) {
                    // Row width fits i32 (mesh dimensions are i32), so the
                    // sum stays in range.
                    let x = i32::try_from(x0 + b).unwrap_or(i32::MAX);
                    if blocked(Coord::new(x, y)) {
                        bits |= 1u64 << b;
                    }
                }
                *word = bits;
            }
        }
    }

    /// Retargets this grid to `mesh` with every bit cleared, reusing the
    /// existing allocation when it is large enough.
    pub fn reset(&mut self, mesh: Mesh) {
        self.mesh = mesh;
        self.words_per_row = words_for(mesh.width() as usize);
        self.words.clear();
        self.words
            .resize(self.words_per_row * mesh.height() as usize, 0);
    }

    /// The mesh this grid covers.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The number of `u64` words backing one row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The bit at `c`, or `None` when `c` is outside the mesh.
    // emr-lint: allow(A1, "the word offset is derived from a coordinate already checked by contains")
    pub fn get(&self, c: Coord) -> Option<bool> {
        self.mesh.contains(c).then(|| {
            let (wi, bit) = self.word_index(c);
            self.words[wi] >> bit & 1 == 1
        })
    }

    /// Sets the bit at `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the mesh; use [`BitGrid::get`] for checked
    /// reads.
    // emr-lint: allow(A1, "documented panic contract: asserts `c` is inside the grid before computing the word offset")
    pub fn set(&mut self, c: Coord, value: bool) {
        assert!(self.mesh.contains(c), "{c} outside {:?}", self.mesh);
        let (wi, bit) = self.word_index(c);
        if value {
            self.words[wi] |= 1u64 << bit;
        } else {
            self.words[wi] &= !(1u64 << bit);
        }
    }

    /// Sets the bit at `c` and reports whether it was already set — the
    /// claim primitive for per-direction link-occupancy planes: the first
    /// claimant of a link lane in a cycle sees `false`, every later
    /// requester sees `true`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the mesh.
    // emr-lint: allow(A1, "documented panic contract: asserts `c` is inside the grid before computing the word offset")
    pub fn test_and_set(&mut self, c: Coord) -> bool {
        assert!(self.mesh.contains(c), "{c} outside {:?}", self.mesh);
        let (wi, bit) = self.word_index(c);
        let prev = self.words[wi] >> bit & 1 == 1;
        self.words[wi] |= 1u64 << bit;
        prev
    }

    /// The raw occupancy word `wi` of row `y` (bit `x mod 64` of word
    /// `x / 64` holds column `x`), letting callers arbitrate a whole row
    /// segment of link lanes with word ops.
    ///
    /// # Panics
    ///
    /// Panics if `y` is outside the mesh or `wi ≥ words_per_row`.
    // emr-lint: allow(A1, "documented panic contract: row_start asserts the row and the width assert bounds the word")
    pub fn word(&self, y: i32, wi: usize) -> u64 {
        assert!(wi < self.words_per_row, "word {wi} outside row");
        self.words[self.row_start(y) + wi]
    }

    /// Zeroes occupancy word `wi` of row `y` — the O(touched words) reset
    /// path for link planes that record which words they dirtied instead
    /// of wiping the whole grid every cycle.
    ///
    /// # Panics
    ///
    /// Panics if `y` is outside the mesh or `wi ≥ words_per_row`.
    // emr-lint: allow(A1, "documented panic contract: row_start asserts the row and the width assert bounds the word")
    pub fn clear_word(&mut self, y: i32, wi: usize) {
        assert!(wi < self.words_per_row, "word {wi} outside row");
        let start = self.row_start(y);
        self.words[start + wi] = 0;
    }

    /// Sets every node's bit to `value` (tail bits stay zero).
    // emr-lint: allow(A1, "fill walks exactly the words the grid owns")
    pub fn fill(&mut self, value: bool) {
        if value {
            let mask = tail_mask(self.mesh.width() as usize);
            for y in 0..self.mesh.height() {
                let last = self.words_per_row - 1;
                let row = self.row_mut(y);
                for w in row.iter_mut() {
                    *w = u64::MAX;
                }
                row[last] &= mask;
            }
        } else {
            self.words.fill(0);
        }
    }

    /// The packed words of row `y`, bit `x mod 64` of word `x / 64` holding
    /// column `x`.
    ///
    /// # Panics
    ///
    /// Panics if `y` is outside the mesh.
    // emr-lint: allow(A1, "documented panic contract: asserts the row is in range before slicing its words")
    pub fn row(&self, y: i32) -> &[u64] {
        let start = self.row_start(y);
        &self.words[start..start + self.words_per_row]
    }

    /// Mutable access to the packed words of row `y`. Callers must keep
    /// the row's unused tail bits zero.
    ///
    /// # Panics
    ///
    /// Panics if `y` is outside the mesh.
    // emr-lint: allow(A1, "documented panic contract: asserts the row is in range before slicing its words")
    pub fn row_mut(&mut self, y: i32) -> &mut [u64] {
        let start = self.row_start(y);
        &mut self.words[start..start + self.words_per_row]
    }

    /// Splits the grid into mutable horizontal bands of `rows_per_band`
    /// whole rows each (the last band may be shorter). Each chunk holds
    /// `rows_per_band × words_per_row` words in row-major order, so band
    /// `b` covers mesh rows `b·rows_per_band ..` and local row `r` of a
    /// band starts at word `r × words_per_row` of its chunk. The chunks
    /// are disjoint, which lets scoped threads relax the bands of one
    /// mesh in parallel. Callers must keep every row's unused tail bits
    /// zero, as with [`BitGrid::row_mut`].
    ///
    /// # Panics
    ///
    /// Panics if `rows_per_band` is zero.
    pub fn row_bands_mut(&mut self, rows_per_band: usize) -> std::slice::ChunksMut<'_, u64> {
        assert!(rows_per_band > 0, "rows_per_band must be positive");
        self.words.chunks_mut(rows_per_band * self.words_per_row)
    }

    /// The number of set bits over the whole grid.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Extracts column `x` as a packed bit vector: bit `y mod 64` of
    /// `dst[y / 64]` holds the node at `(x, y)`. All of `dst` is
    /// overwritten; bits at and beyond the mesh height are cleared.
    ///
    /// This is the column-direction counterpart of [`BitGrid::row`] for
    /// kernels that scan vertical lanes; for whole-grid column work,
    /// [`BitGrid::transpose_into`] amortizes better.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the mesh or `dst` is shorter than
    /// `⌈height / 64⌉` words.
    pub fn column(&self, x: i32, dst: &mut [u64]) {
        assert!(
            (0..self.mesh.width()).contains(&x),
            "column {x} outside {:?}",
            self.mesh
        );
        let height = self.mesh.height() as usize;
        assert!(
            dst.len() >= words_for(height),
            "column destination too short"
        );
        for w in dst.iter_mut() {
            *w = 0;
        }
        let wi = x as usize / 64;
        let bit = x.rem_euclid(64);
        for y in 0..height {
            let b = self.words[y * self.words_per_row + wi] >> bit & 1;
            dst[y / 64] |= b << (y % 64);
        }
    }

    /// Writes the transpose of this grid into `dst`: `dst` is retargeted to
    /// the mesh with width and height swapped, and `dst` at `(y, x)` equals
    /// `self` at `(x, y)`. Runs on 64×64 word tiles, so a full transpose
    /// costs ~6 word operations per 64 nodes — cheap enough to turn every
    /// column-direction kernel into a row-direction one.
    // emr-lint: allow(A1, "documented panic contract: asserts matching dimensions, then walks whole 64x64 tiles")
    pub fn transpose_into(&self, dst: &mut BitGrid) {
        let (w, h) = (self.mesh.width(), self.mesh.height());
        dst.reset(Mesh::new(h, w));
        let dst_wpr = dst.words_per_row;
        let mut tile = [0u64; 64];
        for ty in 0..(h as usize).div_ceil(64) {
            for tx in 0..self.words_per_row {
                // Gather the 64×64 tile at word column tx, row block ty.
                // Rows past the mesh height read as zero, which keeps the
                // transposed rows' tail bits clear for free.
                for (i, t) in tile.iter_mut().enumerate() {
                    let y = ty * 64 + i;
                    *t = if y < h as usize {
                        self.words[y * self.words_per_row + tx]
                    } else {
                        0
                    };
                }
                transpose64(&mut tile);
                // Scatter: transposed word i holds source column
                // tx·64 + i, landing in dst row tx·64 + i at word ty.
                for (i, &t) in tile.iter().enumerate() {
                    let x = tx * 64 + i;
                    if x < w as usize {
                        dst.words[x * dst_wpr + ty] = t;
                    }
                }
            }
        }
    }

    /// Copies the `len` bits at `(from.x .. from.x + len, from.y)` into
    /// `dst`, bit `j` of `dst` holding column `from.x + j`. Columns outside
    /// the mesh read as zero; `dst` bits at and beyond `len` are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `from.y` is outside the mesh, `len` is not positive, or
    /// `dst` is shorter than `⌈len / 64⌉` words.
    pub fn span_east(&self, from: Coord, len: i32, dst: &mut [u64]) {
        self.span(from, len, dst, false);
    }

    /// Copies the `len` bits at `(from.x - len + 1 ..= from.x, from.y)`
    /// into `dst` *in westward order*: bit `j` of `dst` holds column
    /// `from.x - j`. Columns outside the mesh read as zero; `dst` bits at
    /// and beyond `len` are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `from.y` is outside the mesh, `len` is not positive, or
    /// `dst` is shorter than `⌈len / 64⌉` words.
    pub fn span_west(&self, from: Coord, len: i32, dst: &mut [u64]) {
        self.span(from, len, dst, true);
    }

    fn span(&self, from: Coord, len: i32, dst: &mut [u64], west: bool) {
        assert!(len > 0, "span length must be positive");
        let len = len as usize;
        let n = words_for(len);
        assert!(
            (0..self.mesh.height()).contains(&from.y),
            "row {} outside {:?}",
            from.y,
            self.mesh
        );
        assert!(dst.len() >= n, "span destination too short");
        let mut offset = 0i64;
        for slot in dst.iter_mut().take(n) {
            // Word j of an eastward span covers source bits
            // [from.x + 64j, from.x + 64j + 63]; a westward span reads the
            // mirrored window [from.x - 64j - 63, from.x - 64j] and
            // reverses it so bit order matches travel order.
            *slot = if west {
                self.word_at(from.y, i64::from(from.x) - offset - 63)
                    .reverse_bits()
            } else {
                self.word_at(from.y, i64::from(from.x) + offset)
            };
            offset += 64;
        }
        dst[n - 1] &= tail_mask(len);
        for slot in dst.iter_mut().skip(n) {
            *slot = 0;
        }
    }

    /// The 64 bits of row `y` starting at column `start` (which may be
    /// negative or beyond the row; out-of-row columns read as zero).
    fn word_at(&self, y: i32, start: i64) -> u64 {
        let row = self.row(y);
        let wi = start.div_euclid(64);
        let sh = start.rem_euclid(64);
        let pick = |k: i64| -> u64 {
            usize::try_from(k)
                .ok()
                .and_then(|k| row.get(k))
                .copied()
                .unwrap_or(0)
        };
        let lo = pick(wi);
        if sh == 0 {
            lo
        } else {
            lo >> sh | pick(wi + 1) << (64 - sh)
        }
    }

    fn row_start(&self, y: i32) -> usize {
        assert!(
            (0..self.mesh.height()).contains(&y),
            "row {y} outside {:?}",
            self.mesh
        );
        y as usize * self.words_per_row
    }

    fn word_index(&self, c: Coord) -> (usize, i32) {
        (self.row_start(c.y) + c.x as usize / 64, c.x.rem_euclid(64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reference span built bit by bit through `get`.
    fn naive_span(g: &BitGrid, from: Coord, len: i32, west: bool) -> Vec<u64> {
        let mut out = vec![0u64; (len as usize).div_ceil(64)];
        for j in 0..len {
            let x = if west { from.x - j } else { from.x + j };
            if g.get(Coord::new(x, from.y)) == Some(true) {
                out[j as usize / 64] |= 1u64 << (j % 64);
            }
        }
        out
    }

    #[test]
    fn set_get_roundtrip_across_word_boundaries() {
        let mesh = Mesh::new(200, 3);
        let mut g = BitGrid::new(mesh);
        for x in [0, 1, 63, 64, 65, 127, 128, 199] {
            g.set(Coord::new(x, 1), true);
        }
        for x in 0..200 {
            let expect = [0, 1, 63, 64, 65, 127, 128, 199].contains(&x);
            assert_eq!(g.get(Coord::new(x, 1)), Some(expect), "x={x}");
            assert_eq!(g.get(Coord::new(x, 0)), Some(false));
        }
        assert_eq!(g.count_ones(), 8);
        g.set(Coord::new(64, 1), false);
        assert_eq!(g.get(Coord::new(64, 1)), Some(false));
        assert_eq!(g.count_ones(), 7);
    }

    #[test]
    fn get_outside_is_none() {
        let g = BitGrid::new(Mesh::new(5, 4));
        assert_eq!(g.get(Coord::new(5, 0)), None);
        assert_eq!(g.get(Coord::new(0, 4)), None);
        assert_eq!(g.get(Coord::new(-1, 2)), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn set_outside_panics() {
        let mut g = BitGrid::new(Mesh::new(5, 4));
        g.set(Coord::new(5, 0), true);
    }

    #[test]
    fn from_blocked_matches_predicate() {
        // Width 130 exercises a partial tail word.
        let mesh = Mesh::new(130, 4);
        let pred = |c: Coord| (c.x + 3 * c.y) % 7 == 0;
        let g = BitGrid::from_blocked(mesh, pred);
        for c in mesh.nodes() {
            assert_eq!(g.get(c), Some(pred(c)), "{c}");
        }
        assert_eq!(g.count_ones(), mesh.nodes().filter(|&c| pred(c)).count());
    }

    #[test]
    fn fill_keeps_tail_bits_clear() {
        for width in [1, 63, 64, 65, 128, 130] {
            let mesh = Mesh::new(width, 2);
            let mut g = BitGrid::new(mesh);
            g.fill(true);
            assert_eq!(g.count_ones(), mesh.node_count(), "width {width}");
            for c in mesh.nodes() {
                assert_eq!(g.get(c), Some(true));
            }
            g.fill(false);
            assert_eq!(g.count_ones(), 0);
        }
    }

    #[test]
    fn reset_reuses_and_clears() {
        let mut g = BitGrid::from_blocked(Mesh::new(70, 3), |_| true);
        g.reset(Mesh::new(66, 2));
        assert_eq!(g.mesh(), Mesh::new(66, 2));
        assert_eq!(g.count_ones(), 0);
        assert_eq!(g.words_per_row(), 2);
        // Growing again still starts from zero.
        g.reset(Mesh::new(129, 5));
        assert_eq!(g.count_ones(), 0);
        assert_eq!(g.words_per_row(), 3);
    }

    #[test]
    fn row_slices_are_word_aligned() {
        let mesh = Mesh::new(65, 3);
        let mut g = BitGrid::new(mesh);
        g.set(Coord::new(64, 1), true);
        g.set(Coord::new(0, 2), true);
        assert_eq!(g.row(0), &[0, 0]);
        assert_eq!(g.row(1), &[0, 1]);
        assert_eq!(g.row(2), &[1, 0]);
        g.row_mut(0)[0] = 0b110;
        assert_eq!(g.get(Coord::new(1, 0)), Some(true));
        assert_eq!(g.get(Coord::new(2, 0)), Some(true));
    }

    #[test]
    fn spans_match_naive_extraction() {
        let mesh = Mesh::new(150, 3);
        let g = BitGrid::from_blocked(mesh, |c| (c.x * 31 + c.y * 17) % 5 < 2);
        let mut dst = vec![0u64; 3];
        for &x0 in &[0, 1, 63, 64, 70, 149] {
            for &len in &[1, 2, 63, 64, 65, 128, 150] {
                let from = Coord::new(x0, 1);
                g.span_east(from, len, &mut dst);
                assert_eq!(
                    dst[..(len as usize).div_ceil(64)],
                    naive_span(&g, from, len, false),
                    "east x0={x0} len={len}"
                );
                g.span_west(from, len, &mut dst);
                assert_eq!(
                    dst[..(len as usize).div_ceil(64)],
                    naive_span(&g, from, len, true),
                    "west x0={x0} len={len}"
                );
            }
        }
    }

    #[test]
    fn spans_read_zero_outside_the_mesh() {
        let mesh = Mesh::new(10, 2);
        let g = BitGrid::from_blocked(mesh, |_| true);
        let mut dst = vec![u64::MAX; 2];
        // Eastward span runs off the east edge: only 10 in-mesh columns.
        g.span_east(Coord::new(0, 0), 64, &mut dst);
        assert_eq!(dst[0], (1 << 10) - 1);
        // Westward span runs off the west edge from column 3.
        g.span_west(Coord::new(3, 1), 64, &mut dst);
        assert_eq!(dst[0], 0b1111);
        // And the tail words beyond the span are cleared.
        g.span_east(Coord::new(0, 0), 10, &mut dst);
        assert_eq!(dst[1], 0);
    }

    #[test]
    fn column_matches_per_bit_reads() {
        // Heights straddling the word boundary, including 1×n and n×1.
        for (width, height) in [(5, 63), (3, 64), (2, 65), (1, 130), (130, 1), (67, 70)] {
            let mesh = Mesh::new(width, height);
            let g = BitGrid::from_blocked(mesh, |c| (c.x * 7 + c.y * 13) % 5 < 2);
            let words = (height as usize).div_ceil(64);
            let mut dst = vec![u64::MAX; words + 1];
            for x in 0..width {
                g.column(x, &mut dst);
                for y in 0..height {
                    let got = dst[y as usize / 64] >> (y % 64) & 1 == 1;
                    assert_eq!(Some(got), g.get(Coord::new(x, y)), "x={x} y={y}");
                }
                // Bits at and beyond the height — and whole extra words —
                // must come back cleared.
                if height % 64 != 0 {
                    assert_eq!(dst[words - 1] & !tail_mask(height as usize), 0);
                }
                assert_eq!(dst[words], 0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn column_outside_panics() {
        let g = BitGrid::new(Mesh::new(4, 4));
        g.column(4, &mut [0u64]);
    }

    #[test]
    fn transpose_matches_per_bit_reads() {
        for (width, height) in [
            (1, 1),
            (1, 70),
            (70, 1),
            (63, 65),
            (64, 64),
            (65, 63),
            (130, 67),
            (40, 150),
        ] {
            let mesh = Mesh::new(width, height);
            let g = BitGrid::from_blocked(mesh, |c| (c.x * 31 + c.y * 17) % 7 < 3);
            // Seed the destination with garbage to prove reset happens.
            let mut t = BitGrid::from_blocked(Mesh::new(3, 3), |_| true);
            g.transpose_into(&mut t);
            assert_eq!(t.mesh(), Mesh::new(height, width), "{width}x{height}");
            for c in mesh.nodes() {
                assert_eq!(
                    t.get(Coord::new(c.y, c.x)),
                    g.get(c),
                    "{width}x{height} at {c}"
                );
            }
            assert_eq!(t.count_ones(), g.count_ones());
            // Tail bits of every transposed row must stay zero: a second
            // transpose must round-trip exactly.
            let mut back = BitGrid::new(Mesh::new(1, 1));
            t.transpose_into(&mut back);
            assert_eq!(back, g, "{width}x{height} round-trip");
        }
    }

    #[test]
    fn row_bands_cover_disjoint_whole_rows() {
        // 130 columns → 3 words per row; 7 rows split 3/3/1.
        let mesh = Mesh::new(130, 7);
        let mut g = BitGrid::from_blocked(mesh, |c| (c.x + c.y) % 3 == 0);
        let reference = g.clone();
        let wpr = g.words_per_row();
        let bands: Vec<usize> = g.row_bands_mut(3).map(|band| band.len()).collect();
        assert_eq!(bands, vec![3 * wpr, 3 * wpr, wpr]);
        // Rewriting band b's local row r must land on mesh row 3b + r.
        for (b, band) in g.row_bands_mut(3).enumerate() {
            for (r, chunk) in band.chunks_mut(wpr).enumerate() {
                for (i, w) in chunk.iter_mut().enumerate() {
                    assert_eq!(*w, reference.row(i32::try_from(3 * b + r).unwrap())[i]);
                    *w = 0;
                }
            }
        }
        assert_eq!(g.count_ones(), 0);
        // A band size at least the height yields one chunk: the grid.
        assert_eq!(g.row_bands_mut(7).count(), 1);
        assert_eq!(g.row_bands_mut(100).count(), 1);
    }

    #[test]
    fn span_clears_bits_beyond_len() {
        let g = BitGrid::from_blocked(Mesh::new(100, 1), |_| true);
        let mut dst = vec![u64::MAX; 2];
        g.span_east(Coord::new(0, 0), 65, &mut dst);
        assert_eq!(dst[1], 1, "bits past len must be cleared");
    }

    #[test]
    fn test_and_set_reports_prior_claim() {
        let mut g = BitGrid::new(Mesh::new(130, 2));
        let c = Coord::new(100, 1);
        assert!(!g.test_and_set(c), "first claim must see a free lane");
        assert!(g.test_and_set(c), "second claim must see it taken");
        assert_eq!(g.get(c), Some(true));
        assert_eq!(g.count_ones(), 1);
    }

    #[test]
    fn word_and_clear_word_round_trip() {
        let mut g = BitGrid::new(Mesh::new(130, 3));
        g.set(Coord::new(64, 2), true);
        g.set(Coord::new(70, 2), true);
        assert_eq!(g.word(2, 1), (1 << 0) | (1 << 6));
        assert_eq!(g.word(2, 0), 0);
        g.clear_word(2, 1);
        assert_eq!(g.count_ones(), 0);
    }
}
