use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::{Coord, Mesh};

/// Dense per-node storage for a [`Mesh`], indexed by [`Coord`].
///
/// A `Grid<T>` holds one `T` per node in row-major order. It is the backing
/// store for node status maps, safety-level maps, and boundary-information
/// maps.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Grid, Mesh};
///
/// let mesh = Mesh::new(3, 3);
/// let mut dist = Grid::new(mesh, 0u32);
/// dist[Coord::new(1, 2)] = 7;
/// assert_eq!(dist[Coord::new(1, 2)], 7);
/// assert_eq!(dist.get(Coord::new(9, 9)), None); // outside the mesh
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grid<T> {
    mesh: Mesh,
    data: Vec<T>,
}

impl<T: Clone> Grid<T> {
    /// Creates a grid with every node set to `fill`.
    pub fn new(mesh: Mesh, fill: T) -> Self {
        Grid {
            mesh,
            data: vec![fill; mesh.node_count()],
        }
    }

    /// Sets every node to `value` without reallocating.
    pub fn fill(&mut self, value: T) {
        for v in &mut self.data {
            *v = value.clone();
        }
    }

    /// Retargets this grid to `mesh` with every node set to `fill`,
    /// reusing the existing allocation when it is large enough. This is
    /// the reset step of scratch-buffer reuse in hot loops.
    pub fn reset(&mut self, mesh: Mesh, fill: T) {
        self.mesh = mesh;
        self.data.clear();
        self.data.resize(mesh.node_count(), fill);
    }
}

impl<T> Grid<T> {
    /// Creates a grid by evaluating `f` at every node.
    pub fn from_fn(mesh: Mesh, mut f: impl FnMut(Coord) -> T) -> Self {
        let data = mesh.nodes().map(&mut f).collect();
        Grid { mesh, data }
    }

    /// The mesh this grid covers.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The value at `c`, or `None` when `c` is outside the mesh.
    // emr-lint: allow(A1, "the flat offset is computed only after contains confirms the coordinate")
    pub fn get(&self, c: Coord) -> Option<&T> {
        self.mesh
            .contains(c)
            .then(|| &self.data[self.mesh.index_of(c)])
    }

    /// Mutable access to the value at `c`, or `None` outside the mesh.
    pub fn get_mut(&mut self, c: Coord) -> Option<&mut T> {
        self.mesh
            .contains(c)
            .then(|| self.mesh.index_of(c))
            .map(move |i| &mut self.data[i])
    }

    /// Iterates over `(coord, value)` pairs in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Coord, &T)> {
        self.mesh.nodes().zip(self.data.iter())
    }

    /// Counts the nodes whose value satisfies `pred`.
    pub fn count(&self, pred: impl Fn(&T) -> bool) -> usize {
        self.data.iter().filter(|v| pred(v)).count()
    }

    /// The backing storage in row-major order (`mesh.index_of` order).
    /// Lets word-level kernels address whole lanes with index arithmetic
    /// instead of per-node coordinate lookups.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the backing storage in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Applies `f` to every stored value, producing a grid of the results.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> Grid<U> {
        Grid {
            mesh: self.mesh,
            data: self.data.iter().map(&mut f).collect(),
        }
    }
}

impl<T> Index<Coord> for Grid<T> {
    type Output = T;

    /// # Panics
    ///
    /// Panics if `c` is outside the mesh; use [`Grid::get`] for checked
    /// access.
    // emr-lint: allow(A1, "documented panic contract: Index asserts the coordinate is inside the grid")
    fn index(&self, c: Coord) -> &T {
        &self.data[self.mesh.index_of(c)]
    }
}

impl<T> IndexMut<Coord> for Grid<T> {
    fn index_mut(&mut self, c: Coord) -> &mut T {
        let i = self.mesh.index_of(c);
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_index() {
        let mesh = Mesh::new(4, 2);
        let mut g = Grid::new(mesh, 0i64);
        for (i, c) in mesh.nodes().enumerate() {
            g[c] = i64::try_from(i).unwrap();
        }
        assert_eq!(g[Coord::new(3, 1)], 7);
        assert_eq!(g.get(Coord::new(4, 0)), None);
        assert_eq!(g.get(Coord::new(3, 1)), Some(&7));
    }

    #[test]
    fn from_fn_matches_node_order() {
        let mesh = Mesh::new(3, 3);
        let g = Grid::from_fn(mesh, |c| c.x + 10 * c.y);
        assert_eq!(g[Coord::new(2, 1)], 12);
        assert_eq!(g.iter().count(), 9);
    }

    #[test]
    fn count_and_map() {
        let mesh = Mesh::new(3, 3);
        let g = Grid::from_fn(mesh, |c| c.x == c.y);
        assert_eq!(g.count(|&v| v), 3);
        let as_int = g.map(|&v| u8::from(v));
        assert_eq!(as_int.count(|&v| v == 1), 3);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_index_panics() {
        let g = Grid::new(Mesh::square(2), 0u8);
        let _ = g[Coord::new(5, 5)];
    }

    #[test]
    fn fill_and_reset_reuse_storage() {
        let mut g = Grid::new(Mesh::new(4, 4), 3u8);
        g.fill(7);
        assert!(g.iter().all(|(_, &v)| v == 7));
        // Reset to a smaller mesh: old contents must not leak through.
        g.reset(Mesh::new(2, 3), 0);
        assert_eq!(g.mesh(), Mesh::new(2, 3));
        assert_eq!(g.iter().count(), 6);
        assert!(g.iter().all(|(_, &v)| v == 0));
        // And growing again re-fills every node.
        g.reset(Mesh::new(5, 5), 9);
        assert!(g.iter().all(|(_, &v)| v == 9));
    }

    #[test]
    fn get_mut_roundtrip() {
        let mut g = Grid::new(Mesh::square(2), 1u8);
        *g.get_mut(Coord::ORIGIN).unwrap() = 9;
        assert_eq!(g[Coord::ORIGIN], 9);
        assert!(g.get_mut(Coord::new(-1, 0)).is_none());
    }
}
