use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

use crate::Direction;

/// The address of a node in a 2-D mesh.
///
/// Coordinates are signed so that analysis code can talk about positions just
/// outside the mesh (for example the boundary line `x = x_min − 1` of a
/// faulty block whose `x_min` is 0). Whether a coordinate actually denotes a
/// node of a given mesh is answered by [`crate::Mesh::contains`].
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Direction};
///
/// let u = Coord::new(3, 4);
/// assert_eq!(u.step(Direction::East), Coord::new(4, 4));
/// assert_eq!(u.manhattan(Coord::new(0, 0)), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Position along the X dimension (East is `+x`).
    pub x: i32,
    /// Position along the Y dimension (North is `+y`).
    pub y: i32,
}

impl Coord {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Coord = Coord { x: 0, y: 0 };

    /// Creates a coordinate from its two components.
    pub const fn new(x: i32, y: i32) -> Self {
        Coord { x, y }
    }

    /// The Manhattan (L1) distance `|x_d − x_s| + |y_d − y_s|`, the length of
    /// every minimal path between the two nodes.
    pub fn manhattan(self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The coordinate one hop away in the given direction.
    pub fn step(self, dir: Direction) -> Coord {
        let (dx, dy) = dir.offset();
        Coord::new(self.x + dx, self.y + dy)
    }

    /// The coordinate `n` hops away in the given direction.
    pub fn step_by(self, dir: Direction, n: i32) -> Coord {
        let (dx, dy) = dir.offset();
        Coord::new(self.x + dx * n, self.y + dy * n)
    }

    /// Whether `other` is a mesh neighbor of `self` (addresses differ by one
    /// in exactly one dimension).
    pub fn is_adjacent(self, other: Coord) -> bool {
        self.manhattan(other) == 1
    }

    /// The four potential neighbors in E, N, W, S order (some may fall
    /// outside a concrete mesh).
    pub fn adjacent(self) -> [Coord; 4] {
        [
            self.step(Direction::East),
            self.step(Direction::North),
            self.step(Direction::West),
            self.step(Direction::South),
        ]
    }

    /// The direction of the single-hop move from `self` to `other`, if the
    /// two are adjacent.
    pub fn direction_to(self, other: Coord) -> Option<Direction> {
        Direction::ALL.into_iter().find(|&d| self.step(d) == other)
    }
}

impl From<(i32, i32)> for Coord {
    fn from((x, y): (i32, i32)) -> Self {
        Coord::new(x, y)
    }
}

impl Add for Coord {
    type Output = Coord;

    fn add(self, rhs: Coord) -> Coord {
        Coord::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Coord {
    type Output = Coord;

    fn sub(self, rhs: Coord) -> Coord {
        Coord::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_is_symmetric_and_zero_on_self() {
        let a = Coord::new(2, 9);
        let b = Coord::new(-3, 4);
        assert_eq!(a.manhattan(b), b.manhattan(a));
        assert_eq!(a.manhattan(b), 10);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn step_round_trips_with_opposite() {
        let u = Coord::new(5, 5);
        for dir in Direction::ALL {
            assert_eq!(u.step(dir).step(dir.opposite()), u);
        }
    }

    #[test]
    fn step_by_matches_repeated_step() {
        let mut u = Coord::ORIGIN;
        for _ in 0..7 {
            u = u.step(Direction::North);
        }
        assert_eq!(u, Coord::ORIGIN.step_by(Direction::North, 7));
    }

    #[test]
    fn adjacency_and_direction_to() {
        let u = Coord::new(1, 1);
        for dir in Direction::ALL {
            let v = u.step(dir);
            assert!(u.is_adjacent(v));
            assert_eq!(u.direction_to(v), Some(dir));
        }
        assert!(!u.is_adjacent(u));
        assert_eq!(u.direction_to(Coord::new(3, 3)), None);
    }

    #[test]
    fn arithmetic_operators() {
        let a = Coord::new(2, 3);
        let b = Coord::new(-1, 4);
        assert_eq!(a + b, Coord::new(1, 7));
        assert_eq!(a - b, Coord::new(3, -1));
        assert_eq!(Coord::from((2, 3)), a);
    }

    #[test]
    fn display_is_tuple_like() {
        assert_eq!(Coord::new(3, -1).to_string(), "(3, -1)");
    }
}
