use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Coord;

/// The quadrant of a destination relative to a source node.
///
/// The paper places the source at the origin of a local coordinate system;
/// the destination then lies in one of four quadrants. Quadrant boundaries
/// (destinations sharing a row or column with the source) are folded into
/// the closest quadrant so that every destination has a well-defined
/// quadrant: quadrant I covers `dx ≥ 0, dy ≥ 0`, II covers `dx < 0, dy ≥ 0`,
/// III covers `dx < 0, dy < 0` and IV covers `dx ≥ 0, dy < 0`.
///
/// MCC labeling distinguishes only the *pairs* I/III ("type-one") and II/IV
/// ("type-two"); see [`Quadrant::is_type_one`].
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Quadrant};
///
/// let s = Coord::new(100, 100);
/// assert_eq!(Quadrant::of(s, Coord::new(120, 150)), Quadrant::I);
/// assert_eq!(Quadrant::of(s, Coord::new(80, 150)), Quadrant::II);
/// assert_eq!(Quadrant::of(s, Coord::new(80, 50)), Quadrant::III);
/// assert_eq!(Quadrant::of(s, Coord::new(120, 50)), Quadrant::IV);
/// assert!(Quadrant::I.is_type_one() && Quadrant::III.is_type_one());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quadrant {
    /// North-east: `dx ≥ 0, dy ≥ 0`.
    I,
    /// North-west: `dx < 0, dy ≥ 0`.
    II,
    /// South-west: `dx < 0, dy < 0`.
    III,
    /// South-east: `dx ≥ 0, dy < 0`.
    IV,
}

impl Quadrant {
    /// All four quadrants.
    pub const ALL: [Quadrant; 4] = [Quadrant::I, Quadrant::II, Quadrant::III, Quadrant::IV];

    /// The quadrant of `dest` relative to `source`.
    pub fn of(source: Coord, dest: Coord) -> Quadrant {
        let d = dest - source;
        match (d.x >= 0, d.y >= 0) {
            (true, true) => Quadrant::I,
            (false, true) => Quadrant::II,
            (false, false) => Quadrant::III,
            (true, false) => Quadrant::IV,
        }
    }

    /// Whether routing toward this quadrant uses the *type-one* MCC
    /// labeling (quadrants I and III) as opposed to type-two (II and IV).
    pub const fn is_type_one(self) -> bool {
        matches!(self, Quadrant::I | Quadrant::III)
    }

    /// Whether a move toward this quadrant increases `x`.
    pub const fn x_positive(self) -> bool {
        matches!(self, Quadrant::I | Quadrant::IV)
    }

    /// Whether a move toward this quadrant increases `y`.
    pub const fn y_positive(self) -> bool {
        matches!(self, Quadrant::I | Quadrant::II)
    }
}

impl fmt::Display for Quadrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Quadrant::I => "I",
            Quadrant::II => "II",
            Quadrant::III => "III",
            Quadrant::IV => "IV",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_destinations_fold_into_positive_quadrants() {
        let s = Coord::new(5, 5);
        assert_eq!(Quadrant::of(s, Coord::new(9, 5)), Quadrant::I); // due east
        assert_eq!(Quadrant::of(s, Coord::new(5, 9)), Quadrant::I); // due north
        assert_eq!(Quadrant::of(s, Coord::new(1, 5)), Quadrant::II); // due west
        assert_eq!(Quadrant::of(s, Coord::new(5, 1)), Quadrant::IV); // due south
        assert_eq!(Quadrant::of(s, s), Quadrant::I); // degenerate
    }

    #[test]
    fn type_partition() {
        assert!(Quadrant::I.is_type_one());
        assert!(Quadrant::III.is_type_one());
        assert!(!Quadrant::II.is_type_one());
        assert!(!Quadrant::IV.is_type_one());
    }

    #[test]
    fn sign_helpers_match_definition() {
        for q in Quadrant::ALL {
            let dx = if q.x_positive() { 1 } else { -1 };
            let dy = if q.y_positive() { 1 } else { -1 };
            assert_eq!(Quadrant::of(Coord::ORIGIN, Coord::new(dx, dy)), q);
        }
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Quadrant::ALL.iter().map(|q| q.to_string()).collect();
        assert_eq!(names, ["I", "II", "III", "IV"]);
    }
}
