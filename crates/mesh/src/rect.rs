use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Coord;

/// An inclusive axis-aligned rectangle `[x_min : x_max, y_min : y_max]`.
///
/// The paper writes a faulty block exactly this way, e.g. `[2:6, 3:6]` for
/// the block of Figure 1(a). Both bounds are inclusive and a rectangle is
/// never empty.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Rect};
///
/// let block = Rect::new(2, 6, 3, 6);
/// assert!(block.contains(Coord::new(4, 4)));
/// assert_eq!(block.node_count(), 5 * 4);
/// assert_eq!(block.sw_corner_outside(), Coord::new(1, 2));
/// assert_eq!(block.ne_corner_outside(), Coord::new(7, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Rect {
    x_min: i32,
    x_max: i32,
    y_min: i32,
    y_max: i32,
}

impl Rect {
    /// Creates the rectangle `[x_min : x_max, y_min : y_max]`.
    ///
    /// # Panics
    ///
    /// Panics if `x_min > x_max` or `y_min > y_max`.
    pub fn new(x_min: i32, x_max: i32, y_min: i32, y_max: i32) -> Self {
        assert!(
            x_min <= x_max && y_min <= y_max,
            "degenerate rectangle [{x_min}:{x_max}, {y_min}:{y_max}]"
        );
        Rect {
            x_min,
            x_max,
            y_min,
            y_max,
        }
    }

    /// The 1×1 rectangle containing a single node.
    pub fn point(c: Coord) -> Self {
        Rect::new(c.x, c.x, c.y, c.y)
    }

    /// Smallest `x` contained in the rectangle.
    pub fn x_min(&self) -> i32 {
        self.x_min
    }

    /// Largest `x` contained in the rectangle.
    pub fn x_max(&self) -> i32 {
        self.x_max
    }

    /// Smallest `y` contained in the rectangle.
    pub fn y_min(&self) -> i32 {
        self.y_min
    }

    /// Largest `y` contained in the rectangle.
    pub fn y_max(&self) -> i32 {
        self.y_max
    }

    /// Number of columns spanned.
    pub fn width(&self) -> i32 {
        self.x_max - self.x_min + 1
    }

    /// Number of rows spanned.
    pub fn height(&self) -> i32 {
        self.y_max - self.y_min + 1
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> usize {
        (self.width() as usize) * (self.height() as usize)
    }

    /// Whether the rectangle covers `c`.
    pub fn contains(&self, c: Coord) -> bool {
        (self.x_min..=self.x_max).contains(&c.x) && (self.y_min..=self.y_max).contains(&c.y)
    }

    /// Whether the two rectangles share at least one node.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x_min <= other.x_max
            && other.x_min <= self.x_max
            && self.y_min <= other.y_max
            && other.y_min <= self.y_max
    }

    /// Whether the column `x = x_min..=x_max` range covers `x`.
    pub fn spans_column(&self, x: i32) -> bool {
        (self.x_min..=self.x_max).contains(&x)
    }

    /// Whether the row range covers `y`.
    pub fn spans_row(&self, y: i32) -> bool {
        (self.y_min..=self.y_max).contains(&y)
    }

    /// Grows the bounding box to cover `c`, returning the enlarged rectangle.
    pub fn expanded_to(&self, c: Coord) -> Rect {
        Rect {
            x_min: self.x_min.min(c.x),
            x_max: self.x_max.max(c.x),
            y_min: self.y_min.min(c.y),
            y_max: self.y_max.max(c.y),
        }
    }

    /// The rectangle grown by `margin` in all four directions.
    pub fn inflated(&self, margin: i32) -> Rect {
        Rect::new(
            self.x_min - margin,
            self.x_max + margin,
            self.y_min - margin,
            self.y_max + margin,
        )
    }

    /// The enabled corner just south-west of the block,
    /// `(x_min − 1, y_min − 1)` — where boundary lines L1 and L3 originate.
    pub fn sw_corner_outside(&self) -> Coord {
        Coord::new(self.x_min - 1, self.y_min - 1)
    }

    /// The enabled corner just north-east of the block,
    /// `(x_max + 1, y_max + 1)` — where boundary lines L2 and L4 originate.
    pub fn ne_corner_outside(&self) -> Coord {
        Coord::new(self.x_max + 1, self.y_max + 1)
    }

    /// Iterates over all covered nodes in row-major order.
    pub fn iter(&self) -> RectIter {
        RectIter {
            rect: *self,
            next: Some(Coord::new(self.x_min, self.y_min)),
        }
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}:{}, {}:{}]",
            self.x_min, self.x_max, self.y_min, self.y_max
        )
    }
}

impl IntoIterator for &Rect {
    type Item = Coord;
    type IntoIter = RectIter;

    fn into_iter(self) -> RectIter {
        self.iter()
    }
}

/// Row-major iterator over the nodes of a [`Rect`]; see [`Rect::iter`].
#[derive(Debug, Clone)]
pub struct RectIter {
    rect: Rect,
    next: Option<Coord>,
}

impl Iterator for RectIter {
    type Item = Coord;

    fn next(&mut self) -> Option<Coord> {
        let cur = self.next?;
        let succ = if cur.x < self.rect.x_max {
            Some(Coord::new(cur.x + 1, cur.y))
        } else if cur.y < self.rect.y_max {
            Some(Coord::new(self.rect.x_min, cur.y + 1))
        } else {
            None
        };
        self.next = succ;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_block_of_figure_1() {
        // Eight faults form the rectangle [2:6, 3:6].
        let block = Rect::new(2, 6, 3, 6);
        assert_eq!(block.width(), 5);
        assert_eq!(block.height(), 4);
        assert_eq!(block.node_count(), 20);
        assert_eq!(block.to_string(), "[2:6, 3:6]");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn inverted_bounds_panic() {
        let _ = Rect::new(3, 2, 0, 0);
    }

    #[test]
    fn contains_is_inclusive() {
        let r = Rect::new(1, 3, 1, 2);
        assert!(r.contains(Coord::new(1, 1)));
        assert!(r.contains(Coord::new(3, 2)));
        assert!(!r.contains(Coord::new(0, 1)));
        assert!(!r.contains(Coord::new(4, 2)));
        assert!(!r.contains(Coord::new(2, 3)));
    }

    #[test]
    fn intersection_cases() {
        let a = Rect::new(0, 2, 0, 2);
        assert!(a.intersects(&Rect::new(2, 4, 2, 4))); // corner touch
        assert!(!a.intersects(&Rect::new(3, 4, 0, 2))); // adjacent, disjoint
        assert!(a.intersects(&Rect::new(1, 1, 1, 1))); // nested
    }

    #[test]
    fn expansion() {
        let r = Rect::point(Coord::new(2, 2));
        let r = r.expanded_to(Coord::new(5, 1));
        assert_eq!(r, Rect::new(2, 5, 1, 2));
        assert_eq!(r.inflated(1), Rect::new(1, 6, 0, 3));
    }

    #[test]
    fn outside_corners() {
        let r = Rect::new(2, 6, 3, 6);
        assert_eq!(r.sw_corner_outside(), Coord::new(1, 2));
        assert_eq!(r.ne_corner_outside(), Coord::new(7, 7));
        assert!(!r.contains(r.sw_corner_outside()));
        assert!(!r.contains(r.ne_corner_outside()));
    }

    #[test]
    fn iter_covers_exactly_the_rect() {
        let r = Rect::new(1, 3, 5, 6);
        let nodes: Vec<Coord> = r.iter().collect();
        assert_eq!(nodes.len(), r.node_count());
        assert!(nodes.iter().all(|&c| r.contains(c)));
        assert_eq!(nodes[0], Coord::new(1, 5));
        assert_eq!(*nodes.last().unwrap(), Coord::new(3, 6));
        // No duplicates.
        let mut sorted = nodes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), nodes.len());
    }

    #[test]
    fn span_checks() {
        let r = Rect::new(2, 6, 3, 6);
        assert!(r.spans_column(2) && r.spans_column(6));
        assert!(!r.spans_column(1) && !r.spans_column(7));
        assert!(r.spans_row(3) && r.spans_row(6));
        assert!(!r.spans_row(2) && !r.spans_row(7));
    }
}
