use std::mem::size_of;

use serde::{Deserialize, Serialize};

use crate::membytes::MemBytes;
use crate::{BitGrid, Coord, Mesh, Rect};

/// Sorted per-lane obstacle positions: the memory-lean alternative to a
/// dense per-node map.
///
/// A `LaneIndex` stores, for every row `y`, the ascending column indices
/// of the set bits of a packed obstacle grid, and for every column `x`
/// the ascending row indices. Any per-node quantity that is a pure
/// function of the node's row and column obstacle lists — notably the
/// extended safety level, whose four entries are the distances to the
/// nearest obstacle in each direction — can be answered from this index
/// with one binary search per direction instead of a dense lookup.
///
/// With `f` obstacles the index holds `2f` `u32` entries plus one spine
/// vector per lane, so at the paper's fault rates (hundreds of faults on
/// millions of nodes) it is orders of magnitude smaller than the dense
/// 16-byte-per-node safety map it replaces at giant mesh sizes.
///
/// # Examples
///
/// ```
/// use emr_mesh::{BitGrid, Coord, LaneIndex, Mesh};
///
/// let mesh = Mesh::new(100, 100);
/// let packed = BitGrid::from_blocked(mesh, |c| c.x == 40 && c.y == 7);
/// let lanes = LaneIndex::from_packed(&packed);
/// assert_eq!(lanes.row(7), &[40]);
/// assert_eq!(lanes.col(40), &[7]);
/// assert!(lanes.row(8).is_empty());
/// assert!(lanes.contains(Coord::new(40, 7)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneIndex {
    mesh: Mesh,
    rows: Vec<Vec<u32>>,
    cols: Vec<Vec<u32>>,
}

impl LaneIndex {
    /// Builds the index of every set bit of `packed` in one row-major
    /// pass (both the row and the column lists come out sorted for free).
    pub fn from_packed(packed: &BitGrid) -> LaneIndex {
        let mut index = LaneIndex {
            mesh: packed.mesh(),
            rows: Vec::new(),
            cols: Vec::new(),
        };
        index.refresh_from_packed(packed);
        index
    }

    /// Retargets this index to `packed`'s mesh and re-extracts every
    /// lane, reusing the existing lane allocations where possible.
    // emr-lint: allow(A1, "lane vectors are rebuilt to one entry per row and column of the packed grid")
    pub fn refresh_from_packed(&mut self, packed: &BitGrid) {
        let mesh = packed.mesh();
        self.mesh = mesh;
        self.rows.truncate(mesh.height() as usize);
        self.rows.resize_with(mesh.height() as usize, Vec::new);
        self.cols.truncate(mesh.width() as usize);
        self.cols.resize_with(mesh.width() as usize, Vec::new);
        for lane in self.rows.iter_mut().chain(self.cols.iter_mut()) {
            lane.clear();
        }
        for y in 0..mesh.height() {
            let yu = u32::try_from(y).unwrap_or(u32::MAX);
            scan_row(packed.row(y), |x| {
                self.rows[y as usize].push(x);
                self.cols[x as usize].push(yu);
            });
        }
    }

    /// Re-extracts only the lanes that cross `rect` (its rows and its
    /// columns) from `packed`, after a localized obstacle change. Lanes
    /// outside the rectangle are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `packed` covers a different mesh than this index or
    /// `rect` is not contained in the mesh.
    pub fn refresh_rect(&mut self, packed: &BitGrid, rect: Rect) {
        assert_eq!(self.mesh, packed.mesh(), "mesh mismatch");
        assert!(
            self.mesh.contains(Coord::new(rect.x_min(), rect.y_min()))
                && self.mesh.contains(Coord::new(rect.x_max(), rect.y_max())),
            "{rect:?} outside {:?}",
            self.mesh
        );
        for y in rect.y_min()..=rect.y_max() {
            let lane = &mut self.rows[y as usize];
            lane.clear();
            scan_row(packed.row(y), |x| lane.push(x));
        }
        for x in rect.x_min()..=rect.x_max() {
            let wi = x as usize / 64;
            let bit = x.rem_euclid(64);
            let lane = &mut self.cols[x as usize];
            lane.clear();
            for y in 0..self.mesh.height() {
                if packed.row(y)[wi] >> bit & 1 == 1 {
                    lane.push(u32::try_from(y).unwrap_or(u32::MAX));
                }
            }
        }
    }

    /// [`LaneIndex::refresh_rect`] from a membership predicate instead of
    /// a packed grid, for callers that track obstacles behind an
    /// `is_set(c)` view. `is_set` must be the *post-change* predicate for
    /// the whole mesh.
    ///
    /// # Panics
    ///
    /// Panics if `rect` is not contained in the mesh.
    pub fn refresh_rect_with(&mut self, is_set: impl Fn(Coord) -> bool, rect: Rect) {
        assert!(
            self.mesh.contains(Coord::new(rect.x_min(), rect.y_min()))
                && self.mesh.contains(Coord::new(rect.x_max(), rect.y_max())),
            "{rect:?} outside {:?}",
            self.mesh
        );
        for y in rect.y_min()..=rect.y_max() {
            let lane = &mut self.rows[y as usize];
            lane.clear();
            for x in 0..self.mesh.width() {
                if is_set(Coord::new(x, y)) {
                    lane.push(u32::try_from(x).unwrap_or(u32::MAX));
                }
            }
        }
        for x in rect.x_min()..=rect.x_max() {
            let lane = &mut self.cols[x as usize];
            lane.clear();
            for y in 0..self.mesh.height() {
                if is_set(Coord::new(x, y)) {
                    lane.push(u32::try_from(y).unwrap_or(u32::MAX));
                }
            }
        }
    }

    /// The mesh this index covers.
    pub fn mesh(&self) -> Mesh {
        self.mesh
    }

    /// The ascending column indices of the obstacles in row `y`.
    ///
    /// # Panics
    ///
    /// Panics if `y` is outside the mesh.
    // emr-lint: allow(A1, "documented panic contract: asserts the row is in range before returning its lane")
    pub fn row(&self, y: i32) -> &[u32] {
        assert!(
            (0..self.mesh.height()).contains(&y),
            "row {y} outside {:?}",
            self.mesh
        );
        &self.rows[y as usize]
    }

    /// The ascending row indices of the obstacles in column `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is outside the mesh.
    // emr-lint: allow(A1, "documented panic contract: asserts the column is in range before returning its lane")
    pub fn col(&self, x: i32) -> &[u32] {
        assert!(
            (0..self.mesh.width()).contains(&x),
            "column {x} outside {:?}",
            self.mesh
        );
        &self.cols[x as usize]
    }

    /// Whether the node at `c` is an obstacle (a set bit of the source
    /// grid). `false` for coordinates outside the mesh.
    // emr-lint: allow(A1, "row() asserts the coordinate is in range; the binary search stays inside the lane")
    pub fn contains(&self, c: Coord) -> bool {
        self.mesh.contains(c)
            && self.rows[c.y as usize]
                .binary_search(&u32::try_from(c.x).unwrap_or(u32::MAX))
                .is_ok()
    }

    /// The total number of indexed obstacles.
    pub fn count(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

impl MemBytes for LaneIndex {
    /// Two `u32` entries per obstacle plus one `Vec` spine per lane.
    fn mem_bytes(&self) -> u64 {
        let spine = (self.rows.len() + self.cols.len()) * size_of::<Vec<u32>>();
        let entries: usize = self
            .rows
            .iter()
            .chain(self.cols.iter())
            .map(|lane| lane.len() * size_of::<u32>())
            .sum();
        (spine + entries) as u64
    }
}

/// Calls `f` with the column index of every set bit of one packed row,
/// in ascending order.
fn scan_row(row: &[u64], mut f: impl FnMut(u32)) {
    for (wi, &word) in row.iter().enumerate() {
        let mut bits = word;
        let base = u32::try_from(wi).unwrap_or(u32::MAX) * 64;
        while bits != 0 {
            let b = bits.trailing_zeros();
            f(base + b);
            bits &= bits - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(mesh: Mesh) -> BitGrid {
        BitGrid::from_blocked(mesh, |c| (c.x * 31 + c.y * 17) % 9 < 2)
    }

    #[test]
    fn lanes_match_per_bit_reads() {
        // Widths straddling word boundaries, including degenerate lanes.
        for (w, h) in [(1, 1), (65, 3), (130, 5), (64, 64), (7, 70), (1, 130)] {
            let mesh = Mesh::new(w, h);
            let packed = pattern(mesh);
            let lanes = LaneIndex::from_packed(&packed);
            assert_eq!(lanes.mesh(), mesh);
            assert_eq!(lanes.count(), packed.count_ones(), "{w}x{h}");
            for c in mesh.nodes() {
                assert_eq!(lanes.contains(c), packed.get(c) == Some(true), "{c}");
            }
            for y in 0..h {
                let expect: Vec<u32> = (0..w)
                    .filter(|&x| packed.get(Coord::new(x, y)) == Some(true))
                    .map(|x| x as u32)
                    .collect();
                assert_eq!(lanes.row(y), expect, "{w}x{h} row {y}");
            }
            for x in 0..w {
                let expect: Vec<u32> = (0..h)
                    .filter(|&y| packed.get(Coord::new(x, y)) == Some(true))
                    .map(|y| y as u32)
                    .collect();
                assert_eq!(lanes.col(x), expect, "{w}x{h} col {x}");
            }
        }
    }

    #[test]
    fn refresh_rect_tracks_localized_changes() {
        let mesh = Mesh::new(130, 40);
        let mut packed = pattern(mesh);
        let mut lanes = LaneIndex::from_packed(&packed);
        // Flip a small patch of bits and refresh only its rectangle.
        let rect = Rect::new(62, 66, 10, 12);
        for y in rect.y_min()..=rect.y_max() {
            for x in rect.x_min()..=rect.x_max() {
                let c = Coord::new(x, y);
                let cur = packed.get(c) == Some(true);
                packed.set(c, !cur);
            }
        }
        lanes.refresh_rect(&packed, rect);
        assert_eq!(lanes, LaneIndex::from_packed(&packed));
    }

    #[test]
    fn refresh_rect_with_predicate_matches_packed_refresh() {
        let mesh = Mesh::new(70, 30);
        let mut packed = pattern(mesh);
        let mut lanes = LaneIndex::from_packed(&packed);
        let rect = Rect::new(60, 65, 3, 8);
        for y in rect.y_min()..=rect.y_max() {
            for x in rect.x_min()..=rect.x_max() {
                let c = Coord::new(x, y);
                packed.set(c, packed.get(c) != Some(true));
            }
        }
        lanes.refresh_rect_with(|c| packed.get(c) == Some(true), rect);
        assert_eq!(lanes, LaneIndex::from_packed(&packed));
    }

    #[test]
    fn refresh_from_packed_retargets_meshes() {
        let mut lanes = LaneIndex::from_packed(&pattern(Mesh::new(70, 9)));
        for (w, h) in [(3, 80), (130, 2), (64, 64)] {
            let packed = pattern(Mesh::new(w, h));
            lanes.refresh_from_packed(&packed);
            assert_eq!(lanes, LaneIndex::from_packed(&packed), "{w}x{h}");
        }
    }

    #[test]
    fn mem_bytes_counts_entries_and_spines() {
        let mesh = Mesh::new(10, 4);
        let packed = BitGrid::from_blocked(mesh, |c| c.x == c.y);
        let lanes = LaneIndex::from_packed(&packed);
        let spine = (4 + 10) as u64 * size_of::<Vec<u32>>() as u64;
        assert_eq!(lanes.mem_bytes(), spine + 2 * 4 * 4);
    }
}
