//! 2-D mesh topology substrate for the extended-minimal-routing reproduction.
//!
//! An `n × m` 2-D mesh has `n × m` nodes; node `u` has an address
//! `(x_u, y_u)` with `0 ≤ x_u < n` and `0 ≤ y_u < m`, and two nodes are
//! connected when their addresses differ by exactly one in exactly one
//! dimension (Wu & Jiang, §2). This crate provides the geometry every other
//! crate builds on:
//!
//! * [`Coord`] — signed node addresses (signed so that off-mesh boundary
//!   lines such as `x = x_min − 1` can be represented during analysis),
//! * [`Direction`] — the four mesh directions East/North/West/South,
//! * [`Mesh`] — mesh bounds and neighborhood queries,
//! * [`Rect`] — inclusive rectangles `[x_min..x_max, y_min..y_max]` used to
//!   describe faulty blocks,
//! * [`Grid`] — a dense per-node storage indexed by [`Coord`],
//! * [`BitGrid`] — one bit per node, packed into `u64` words for the
//!   word-parallel reachability kernels,
//! * [`LaneIndex`] — sorted per-row/per-column obstacle positions, the
//!   memory-lean alternative to dense per-node maps at giant mesh sizes,
//! * [`MemBytes`] — uniform resident-byte accounting across the map types,
//! * [`Quadrant`] and [`Frame`] — relative quadrants and the mirroring
//!   transform that maps any source/destination pair onto the canonical
//!   "destination in quadrant I" frame used throughout the paper,
//! * [`Path`] — node sequences with minimality checks.
//!
//! # Examples
//!
//! ```
//! use emr_mesh::{Coord, Mesh};
//!
//! let mesh = Mesh::new(8, 8);
//! let a = Coord::new(2, 3);
//! let b = Coord::new(5, 1);
//! assert_eq!(a.manhattan(b), 5);
//! assert_eq!(mesh.neighbors(a).count(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitgrid;
mod coord;
mod direction;
mod frame;
mod grid;
mod lanes;
mod membytes;
mod mesh;
mod path;
mod quadrant;
mod rect;

pub use bitgrid::BitGrid;
pub use coord::Coord;
pub use direction::Direction;
pub use frame::Frame;
pub use grid::Grid;
pub use lanes::LaneIndex;
pub use membytes::MemBytes;
pub use mesh::{Mesh, Neighbors};
pub use path::Path;
pub use quadrant::Quadrant;
pub use rect::{Rect, RectIter};

/// A hop count or hop distance along one dimension of the mesh.
///
/// Distances to faulty blocks use [`UNBOUNDED`] when no block lies in the
/// given direction (the paper's `∞`).
pub type Dist = u32;

/// The "infinite" distance: no obstacle lies in this direction.
///
/// The paper's default extended safety level is `(∞, ∞, ∞, ∞)`.
pub const UNBOUNDED: Dist = u32::MAX;
