use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the four directions of a 2-D mesh.
///
/// The paper orders the components of an extended safety level as
/// `(E, S, W, N)`; this enum uses the same compass names with East = `+x`
/// and North = `+y`.
///
/// # Examples
///
/// ```
/// use emr_mesh::Direction;
///
/// assert_eq!(Direction::East.opposite(), Direction::West);
/// assert_eq!(Direction::North.offset(), (0, 1));
/// assert!(Direction::East.is_horizontal());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// Towards `+x`.
    East,
    /// Towards `+y`.
    North,
    /// Towards `-x`.
    West,
    /// Towards `-y`.
    South,
}

impl Direction {
    /// All four directions, in E, N, W, S order.
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::North,
        Direction::West,
        Direction::South,
    ];

    /// The unit offset `(dx, dy)` of a single hop in this direction.
    pub const fn offset(self) -> (i32, i32) {
        match self {
            Direction::East => (1, 0),
            Direction::North => (0, 1),
            Direction::West => (-1, 0),
            Direction::South => (0, -1),
        }
    }

    /// The direction pointing the opposite way.
    pub const fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::North => Direction::South,
            Direction::West => Direction::East,
            Direction::South => Direction::North,
        }
    }

    /// Whether this direction moves along the X dimension.
    pub const fn is_horizontal(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }

    /// Whether this direction moves along the Y dimension.
    pub const fn is_vertical(self) -> bool {
        !self.is_horizontal()
    }

    /// A compact per-direction index (E=0, N=1, W=2, S=3), handy for
    /// direction-indexed arrays.
    pub const fn index(self) -> usize {
        match self {
            Direction::East => 0,
            Direction::North => 1,
            Direction::West => 2,
            Direction::South => 3,
        }
    }

    /// Mirrors the direction across the Y axis (East ↔ West) when `flip` is
    /// true; used by [`crate::Frame`] to normalize quadrants.
    pub const fn mirrored_x(self, flip: bool) -> Direction {
        match (self, flip) {
            (Direction::East, true) => Direction::West,
            (Direction::West, true) => Direction::East,
            (d, _) => d,
        }
    }

    /// Mirrors the direction across the X axis (North ↔ South) when `flip`
    /// is true; used by [`crate::Frame`] to normalize quadrants.
    pub const fn mirrored_y(self, flip: bool) -> Direction {
        match (self, flip) {
            (Direction::North, true) => Direction::South,
            (Direction::South, true) => Direction::North,
            (d, _) => d,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Direction::East => "E",
            Direction::North => "N",
            Direction::West => "W",
            Direction::South => "S",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_an_involution() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn offsets_are_unit_vectors() {
        for d in Direction::ALL {
            let (dx, dy) = d.offset();
            assert_eq!(dx.abs() + dy.abs(), 1);
            let (ox, oy) = d.opposite().offset();
            assert_eq!((dx, dy), (-ox, -oy));
        }
    }

    #[test]
    fn horizontal_vertical_partition() {
        assert!(Direction::East.is_horizontal());
        assert!(Direction::West.is_horizontal());
        assert!(Direction::North.is_vertical());
        assert!(Direction::South.is_vertical());
    }

    #[test]
    fn indices_are_distinct() {
        let mut seen = [false; 4];
        for d in Direction::ALL {
            assert!(!seen[d.index()]);
            seen[d.index()] = true;
        }
    }

    #[test]
    fn mirroring() {
        assert_eq!(Direction::East.mirrored_x(true), Direction::West);
        assert_eq!(Direction::East.mirrored_x(false), Direction::East);
        assert_eq!(Direction::North.mirrored_x(true), Direction::North);
        assert_eq!(Direction::North.mirrored_y(true), Direction::South);
        assert_eq!(Direction::South.mirrored_y(true), Direction::North);
        assert_eq!(Direction::West.mirrored_y(true), Direction::West);
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Direction::ALL.iter().map(|d| d.to_string()).collect();
        assert_eq!(names, ["E", "N", "W", "S"]);
    }
}
