use serde::{Deserialize, Serialize};

use crate::{Coord, Direction, Rect};

/// The bounds of an `n × m` 2-D mesh.
///
/// Nodes have addresses `(x, y)` with `0 ≤ x < width` and `0 ≤ y < height`.
/// Interior nodes have degree 4; edge and corner nodes have degree 3 and 2.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Mesh};
///
/// let mesh = Mesh::new(4, 3);
/// assert_eq!(mesh.node_count(), 12);
/// assert!(mesh.contains(Coord::new(3, 2)));
/// assert!(!mesh.contains(Coord::new(4, 0)));
/// // A corner has exactly two in-mesh neighbors.
/// assert_eq!(mesh.neighbors(Coord::ORIGIN).count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mesh {
    width: i32,
    height: i32,
}

impl Mesh {
    /// Creates an `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive.
    pub fn new(width: i32, height: i32) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh { width, height }
    }

    /// Creates a square `n × n` mesh, the configuration used throughout the
    /// paper's evaluation (`n = 200`).
    pub fn square(n: i32) -> Self {
        Mesh::new(n, n)
    }

    /// The extent of the X dimension.
    pub fn width(&self) -> i32 {
        self.width
    }

    /// The extent of the Y dimension.
    pub fn height(&self) -> i32 {
        self.height
    }

    /// The total number of nodes.
    pub fn node_count(&self) -> usize {
        (self.width as usize) * (self.height as usize)
    }

    /// Whether `c` addresses a node of this mesh.
    pub fn contains(&self, c: Coord) -> bool {
        (0..self.width).contains(&c.x) && (0..self.height).contains(&c.y)
    }

    /// The rectangle covering the whole mesh.
    pub fn bounds(&self) -> Rect {
        Rect::new(0, self.width - 1, 0, self.height - 1)
    }

    /// The in-mesh neighbors of `c`, in E, N, W, S order.
    ///
    /// `c` itself does not need to be inside the mesh; this is useful when
    /// walking boundary lines that bend at the mesh edge.
    pub fn neighbors(&self, c: Coord) -> Neighbors<'_> {
        Neighbors {
            mesh: self,
            center: c,
            next: 0,
        }
    }

    /// The in-mesh neighbor of `c` in direction `dir`, if any.
    pub fn neighbor(&self, c: Coord, dir: Direction) -> Option<Coord> {
        let v = c.step(dir);
        self.contains(v).then_some(v)
    }

    /// Iterates over every node of the mesh in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = Coord> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }

    /// The center node `(⌊w/2⌋, ⌊h/2⌋)`; the paper places the source there.
    pub fn center(&self) -> Coord {
        Coord::new(self.width / 2, self.height / 2)
    }

    /// Row-major linear index of an in-mesh coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the mesh.
    pub fn index_of(&self, c: Coord) -> usize {
        assert!(self.contains(c), "{c} outside {self:?}");
        (c.y as usize) * (self.width as usize) + (c.x as usize)
    }
}

/// Iterator over the in-mesh neighbors of a node; see [`Mesh::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    mesh: &'a Mesh,
    center: Coord,
    next: usize,
}

impl Iterator for Neighbors<'_> {
    type Item = Coord;

    // emr-lint: allow(A1, "the iterator cursor is clamped to width*height before being decomposed")
    fn next(&mut self) -> Option<Coord> {
        while self.next < 4 {
            let dir = Direction::ALL[self.next];
            self.next += 1;
            let v = self.center.step(dir);
            if self.mesh.contains(v) {
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_matches_bounds() {
        let mesh = Mesh::new(5, 7);
        assert!(mesh.contains(Coord::new(0, 0)));
        assert!(mesh.contains(Coord::new(4, 6)));
        assert!(!mesh.contains(Coord::new(5, 0)));
        assert!(!mesh.contains(Coord::new(0, 7)));
        assert!(!mesh.contains(Coord::new(-1, 3)));
        assert_eq!(mesh.bounds(), Rect::new(0, 4, 0, 6));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = Mesh::new(0, 3);
    }

    #[test]
    fn degrees() {
        let mesh = Mesh::square(4);
        // Corner, edge, interior.
        assert_eq!(mesh.neighbors(Coord::new(0, 0)).count(), 2);
        assert_eq!(mesh.neighbors(Coord::new(1, 0)).count(), 3);
        assert_eq!(mesh.neighbors(Coord::new(1, 1)).count(), 4);
    }

    #[test]
    fn neighbors_of_off_mesh_coord() {
        let mesh = Mesh::square(3);
        // (-1, 0) has exactly one in-mesh neighbor: (0, 0).
        let ns: Vec<Coord> = mesh.neighbors(Coord::new(-1, 0)).collect();
        assert_eq!(ns, vec![Coord::new(0, 0)]);
    }

    #[test]
    fn nodes_enumerates_all_once() {
        let mesh = Mesh::new(3, 2);
        let nodes: Vec<Coord> = mesh.nodes().collect();
        assert_eq!(nodes.len(), mesh.node_count());
        assert_eq!(nodes[0], Coord::new(0, 0));
        assert_eq!(nodes[1], Coord::new(1, 0));
        assert_eq!(nodes[5], Coord::new(2, 1));
    }

    #[test]
    fn index_of_is_row_major() {
        let mesh = Mesh::new(3, 2);
        for (i, c) in mesh.nodes().enumerate() {
            assert_eq!(mesh.index_of(c), i);
        }
    }

    #[test]
    fn center_of_even_and_odd() {
        assert_eq!(Mesh::square(200).center(), Coord::new(100, 100));
        assert_eq!(Mesh::new(5, 3).center(), Coord::new(2, 1));
    }

    #[test]
    fn directional_neighbor() {
        let mesh = Mesh::square(2);
        assert_eq!(
            mesh.neighbor(Coord::ORIGIN, Direction::East),
            Some(Coord::new(1, 0))
        );
        assert_eq!(mesh.neighbor(Coord::ORIGIN, Direction::West), None);
    }
}
