use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Coord;

/// A walk through the mesh: a sequence of nodes in hop order.
///
/// Paths are produced by the routing protocols and checked by the test
/// suite: a *minimal* path from `s` to `d` has exactly
/// `manhattan(s, d)` hops, and a *sub-minimal* path (extension 1) has
/// exactly two more.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Path};
///
/// let p: Path = [(0, 0), (1, 0), (1, 1)].into_iter().map(Coord::from).collect();
/// assert!(p.is_contiguous());
/// assert_eq!(p.hops(), 2);
/// assert!(p.is_minimal());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Path {
    nodes: Vec<Coord>,
}

impl Path {
    /// Creates a path from a node sequence.
    pub fn new(nodes: Vec<Coord>) -> Self {
        Path { nodes }
    }

    /// The path holding a single node (zero hops).
    pub fn singleton(c: Coord) -> Self {
        Path { nodes: vec![c] }
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[Coord] {
        &self.nodes
    }

    /// The first node, if the path is non-empty.
    pub fn source(&self) -> Option<Coord> {
        self.nodes.first().copied()
    }

    /// The last node, if the path is non-empty.
    pub fn dest(&self) -> Option<Coord> {
        self.nodes.last().copied()
    }

    /// The number of hops (edges), which is one less than the number of
    /// nodes; 0 for empty or singleton paths.
    pub fn hops(&self) -> u32 {
        u32::try_from(self.nodes.len().saturating_sub(1)).unwrap_or(u32::MAX)
    }

    /// Whether every consecutive pair of nodes is mesh-adjacent.
    pub fn is_contiguous(&self) -> bool {
        self.nodes.windows(2).all(|w| w[0].is_adjacent(w[1]))
    }

    /// Whether this is a minimal (shortest) walk between its endpoints:
    /// contiguous with exactly `manhattan(source, dest)` hops.
    ///
    /// Empty paths are not minimal; singletons trivially are.
    pub fn is_minimal(&self) -> bool {
        match (self.source(), self.dest()) {
            (Some(s), Some(d)) => self.is_contiguous() && self.hops() == s.manhattan(d),
            _ => false,
        }
    }

    /// Whether this is a *sub-minimal* walk: contiguous with exactly
    /// `manhattan(source, dest) + 2` hops (one detour, as in extension 1).
    pub fn is_sub_minimal(&self) -> bool {
        match (self.source(), self.dest()) {
            (Some(s), Some(d)) => self.is_contiguous() && self.hops() == s.manhattan(d) + 2,
            _ => false,
        }
    }

    /// Whether no node of the path satisfies `blocked`.
    pub fn avoids(&self, blocked: impl Fn(Coord) -> bool) -> bool {
        !self.nodes.iter().any(|&c| blocked(c))
    }

    /// Whether the path never visits the same node twice.
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.nodes.iter().all(|c| seen.insert(*c))
    }

    /// Appends a node to the end of the path.
    pub fn push(&mut self, c: Coord) {
        self.nodes.push(c);
    }

    /// Extends this path by another whose first node must equal this path's
    /// last node (the junction node is kept once). Used to splice the two
    /// phases of the extensions' two-phase routing.
    ///
    /// # Panics
    ///
    /// Panics if either path is empty or the endpoints do not match.
    // emr-lint: allow(A1, "documented panic contract: callers splice two non-empty phases that share the junction node")
    pub fn join(mut self, second: Path) -> Path {
        let end = self.dest().expect("joining an empty path");
        let start = second.source().expect("joining with an empty path");
        assert_eq!(end, start, "paths do not share a junction node");
        self.nodes.extend(second.nodes.into_iter().skip(1));
        self
    }
}

impl FromIterator<Coord> for Path {
    fn from_iter<I: IntoIterator<Item = Coord>>(iter: I) -> Self {
        Path {
            nodes: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for c in &self.nodes {
            if !first {
                f.write_str(" -> ")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        if self.nodes.is_empty() {
            f.write_str("(empty path)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(coords: &[(i32, i32)]) -> Path {
        coords.iter().map(|&(x, y)| Coord::new(x, y)).collect()
    }

    #[test]
    fn minimal_detection() {
        let p = path(&[(0, 0), (1, 0), (1, 1), (2, 1)]);
        assert!(p.is_contiguous());
        assert!(p.is_minimal());
        assert!(!p.is_sub_minimal());
    }

    #[test]
    fn sub_minimal_detection() {
        // One detour: down and back, then across.
        let p = path(&[(0, 0), (0, -1), (1, -1), (1, 0), (2, 0)]);
        assert!(p.is_contiguous());
        assert!(!p.is_minimal());
        assert!(p.is_sub_minimal());
        assert_eq!(p.hops(), Coord::new(0, 0).manhattan(Coord::new(2, 0)) + 2);
    }

    #[test]
    fn non_contiguous_is_never_minimal() {
        let p = path(&[(0, 0), (2, 0)]);
        assert!(!p.is_contiguous());
        assert!(!p.is_minimal());
    }

    #[test]
    fn singleton_and_empty() {
        assert!(Path::singleton(Coord::ORIGIN).is_minimal());
        assert_eq!(Path::singleton(Coord::ORIGIN).hops(), 0);
        assert!(!Path::default().is_minimal());
        assert_eq!(Path::default().to_string(), "(empty path)");
    }

    #[test]
    fn join_splices_phases() {
        let a = path(&[(0, 0), (1, 0)]);
        let b = path(&[(1, 0), (1, 1)]);
        let joined = a.join(b);
        assert_eq!(joined.nodes().len(), 3);
        assert!(joined.is_minimal());
    }

    #[test]
    #[should_panic(expected = "junction")]
    fn join_requires_matching_endpoints() {
        let _ = path(&[(0, 0)]).join(path(&[(5, 5)]));
    }

    #[test]
    fn avoids_and_simple() {
        let p = path(&[(0, 0), (1, 0), (1, 1)]);
        assert!(p.avoids(|c| c.x > 5));
        assert!(!p.avoids(|c| c == Coord::new(1, 0)));
        assert!(p.is_simple());
        let loopy = path(&[(0, 0), (1, 0), (0, 0)]);
        assert!(!loopy.is_simple());
    }

    #[test]
    fn display_formats_arrows() {
        let p = path(&[(0, 0), (0, 1)]);
        assert_eq!(p.to_string(), "(0, 0) -> (0, 1)");
    }
}
