use serde::{Deserialize, Serialize};

use crate::{Coord, Direction, Mesh, Quadrant, Rect};

/// The mirroring transform that maps a source/destination pair onto the
/// paper's canonical frame: source at the origin, destination in quadrant I.
///
/// Every condition and routing rule in the paper is stated for a destination
/// in the first quadrant; the other quadrants follow "by symmetry". `Frame`
/// makes that symmetry executable: it translates the source to the origin
/// and mirrors the axes so the destination's relative coordinates become
/// non-negative. Rectangles, directions and mesh bounds can all be carried
/// between the absolute and the relative frame.
///
/// # Examples
///
/// ```
/// use emr_mesh::{Coord, Frame, Quadrant};
///
/// let s = Coord::new(10, 10);
/// let d = Coord::new(4, 15); // quadrant II of s
/// let frame = Frame::normalizing(s, d);
/// assert_eq!(frame.to_rel(s), Coord::new(0, 0));
/// let rd = frame.to_rel(d);
/// assert!(rd.x >= 0 && rd.y >= 0); // now in quadrant I
/// assert_eq!(frame.to_abs(rd), d); // round-trips
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Frame {
    origin: Coord,
    flip_x: bool,
    flip_y: bool,
}

impl Frame {
    /// The frame that translates `source` to the origin and mirrors axes so
    /// that `dest` lands in quadrant I.
    pub fn normalizing(source: Coord, dest: Coord) -> Frame {
        let q = Quadrant::of(source, dest);
        Frame {
            origin: source,
            flip_x: !q.x_positive(),
            flip_y: !q.y_positive(),
        }
    }

    /// The identity frame at `source` (no mirroring).
    pub fn at(source: Coord) -> Frame {
        Frame {
            origin: source,
            flip_x: false,
            flip_y: false,
        }
    }

    /// The absolute coordinate acting as the relative origin (the source).
    pub fn origin(&self) -> Coord {
        self.origin
    }

    /// Whether the X axis is mirrored.
    pub fn flips_x(&self) -> bool {
        self.flip_x
    }

    /// Whether the Y axis is mirrored.
    pub fn flips_y(&self) -> bool {
        self.flip_y
    }

    /// Maps an absolute coordinate into the relative frame.
    pub fn to_rel(&self, c: Coord) -> Coord {
        let dx = c.x - self.origin.x;
        let dy = c.y - self.origin.y;
        Coord::new(
            if self.flip_x { -dx } else { dx },
            if self.flip_y { -dy } else { dy },
        )
    }

    /// Maps a relative coordinate back to the absolute frame.
    pub fn to_abs(&self, c: Coord) -> Coord {
        Coord::new(
            self.origin.x + if self.flip_x { -c.x } else { c.x },
            self.origin.y + if self.flip_y { -c.y } else { c.y },
        )
    }

    /// Maps an absolute rectangle into the relative frame (mirroring swaps
    /// the min/max bounds as needed).
    pub fn rect_to_rel(&self, r: &Rect) -> Rect {
        let a = self.to_rel(Coord::new(r.x_min(), r.y_min()));
        let b = self.to_rel(Coord::new(r.x_max(), r.y_max()));
        Rect::new(a.x.min(b.x), a.x.max(b.x), a.y.min(b.y), a.y.max(b.y))
    }

    /// The absolute direction corresponding to a relative direction: the
    /// move a node must physically take when the frame says "go East".
    pub fn dir_to_abs(&self, rel: Direction) -> Direction {
        rel.mirrored_x(self.flip_x).mirrored_y(self.flip_y)
    }

    /// The relative direction corresponding to an absolute direction.
    pub fn dir_to_rel(&self, abs: Direction) -> Direction {
        // Mirroring is an involution, so the same mapping works both ways.
        self.dir_to_abs(abs)
    }

    /// The mesh bounds expressed in the relative frame.
    pub fn bounds_to_rel(&self, mesh: &Mesh) -> Rect {
        self.rect_to_rel(&mesh.bounds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames() -> Vec<(Frame, Coord, Coord)> {
        let s = Coord::new(10, 10);
        [
            Coord::new(14, 13),
            Coord::new(6, 13),
            Coord::new(6, 7),
            Coord::new(14, 7),
        ]
        .into_iter()
        .map(|d| (Frame::normalizing(s, d), s, d))
        .collect()
    }

    #[test]
    fn destination_lands_in_quadrant_one() {
        for (f, s, d) in frames() {
            assert_eq!(f.to_rel(s), Coord::ORIGIN);
            let rd = f.to_rel(d);
            assert!(rd.x >= 0 && rd.y >= 0, "{rd} not in quadrant I");
            assert_eq!(rd.manhattan(Coord::ORIGIN), s.manhattan(d));
        }
    }

    #[test]
    fn roundtrip_all_quadrants() {
        for (f, _, _) in frames() {
            for c in Rect::new(-3, 3, -3, 3).iter() {
                assert_eq!(f.to_rel(f.to_abs(c)), c);
                assert_eq!(f.to_abs(f.to_rel(c)), c);
            }
        }
    }

    #[test]
    fn direction_mapping_is_consistent_with_coords() {
        for (f, s, _) in frames() {
            for rel in Direction::ALL {
                let abs = f.dir_to_abs(rel);
                // Taking one absolute step in `abs` must advance the
                // relative position by one step in `rel`.
                let moved = s.step(abs);
                assert_eq!(f.to_rel(moved), Coord::ORIGIN.step(rel));
                assert_eq!(f.dir_to_rel(abs), rel);
            }
        }
    }

    #[test]
    fn rect_mapping_preserves_membership() {
        for (f, _, _) in frames() {
            let r = Rect::new(2, 6, 3, 6);
            let rel = f.rect_to_rel(&r);
            assert_eq!(rel.node_count(), r.node_count());
            for c in r.iter() {
                assert!(rel.contains(f.to_rel(c)));
            }
        }
    }

    #[test]
    fn identity_frame() {
        let f = Frame::at(Coord::new(3, 4));
        assert!(!f.flips_x() && !f.flips_y());
        assert_eq!(f.to_rel(Coord::new(5, 6)), Coord::new(2, 2));
        assert_eq!(f.dir_to_abs(Direction::North), Direction::North);
    }

    #[test]
    fn bounds_to_rel_contains_rel_mesh_nodes() {
        let mesh = Mesh::new(7, 5);
        let s = mesh.center();
        let f = Frame::normalizing(s, Coord::new(0, 0)); // quadrant III
        let b = f.bounds_to_rel(&mesh);
        for c in mesh.nodes() {
            assert!(b.contains(f.to_rel(c)));
        }
    }
}
