use std::mem::{size_of, size_of_val};

use crate::{BitGrid, Grid};

/// Resident heap bytes held by a per-node map or index.
///
/// The scale work (mesh 64 → 4096, ~16.7M nodes) needs a uniform way to
/// account for what each map actually keeps resident, so the bench layer
/// can report bytes-per-node curves and CI can gate regressions. The
/// numbers are payload accounting (element count × element size), not an
/// allocator measurement: they exclude per-`Vec` headers on the owning
/// struct and any over-allocated capacity, which makes them deterministic
/// across allocators and exactly reproducible in CI.
pub trait MemBytes {
    /// Approximate resident heap bytes held by this value.
    fn mem_bytes(&self) -> u64;
}

impl<T> MemBytes for Grid<T> {
    /// One `T` per node: `node_count × size_of::<T>()`.
    fn mem_bytes(&self) -> u64 {
        size_of_val(self.as_slice()) as u64
    }
}

impl MemBytes for BitGrid {
    /// One bit per node, padded to whole words per row.
    fn mem_bytes(&self) -> u64 {
        (self.words_per_row() * self.mesh().height() as usize * size_of::<u64>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mesh;

    #[test]
    fn grid_counts_payload_bytes() {
        let mesh = Mesh::new(10, 3);
        assert_eq!(Grid::new(mesh, 0u8).mem_bytes(), 30);
        assert_eq!(Grid::new(mesh, 0u32).mem_bytes(), 120);
        assert_eq!(Grid::new(mesh, [0u32; 4]).mem_bytes(), 480);
    }

    #[test]
    fn bitgrid_counts_row_padded_words() {
        // 65 columns → 2 words per row.
        assert_eq!(BitGrid::new(Mesh::new(65, 3)).mem_bytes(), 2 * 3 * 8);
        assert_eq!(BitGrid::new(Mesh::new(64, 4)).mem_bytes(), 4 * 8);
    }
}
