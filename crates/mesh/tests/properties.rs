//! Property-based tests for the geometric substrate.

use proptest::prelude::*;

use emr_mesh::{Coord, Direction, Frame, Mesh, Path, Quadrant, Rect};

fn coords() -> impl Strategy<Value = Coord> {
    (-50i32..50, -50i32..50).prop_map(|(x, y)| Coord::new(x, y))
}

proptest! {
    #[test]
    fn manhattan_is_a_metric(a in coords(), b in coords(), c in coords()) {
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(a), 0);
        // Triangle inequality.
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn frame_roundtrips_everywhere(s in coords(), d in coords(), p in coords()) {
        let f = Frame::normalizing(s, d);
        prop_assert_eq!(f.to_abs(f.to_rel(p)), p);
        prop_assert_eq!(f.to_rel(f.to_abs(p)), p);
        // Distances are preserved.
        prop_assert_eq!(f.to_rel(p).manhattan(f.to_rel(s)), p.manhattan(s));
    }

    #[test]
    fn frame_normalizes_destination(s in coords(), d in coords()) {
        let f = Frame::normalizing(s, d);
        let rd = f.to_rel(d);
        prop_assert!(rd.x >= 0 && rd.y >= 0);
        prop_assert_eq!(f.to_rel(s), Coord::ORIGIN);
    }

    #[test]
    fn frame_direction_mapping_is_coherent(s in coords(), d in coords(), p in coords()) {
        let f = Frame::normalizing(s, d);
        for dir in Direction::ALL {
            let abs = f.dir_to_abs(dir);
            // One absolute step in `abs` is one relative step in `dir`.
            prop_assert_eq!(f.to_rel(p.step(abs)), f.to_rel(p).step(dir));
            prop_assert_eq!(f.dir_to_rel(abs), dir);
        }
    }

    #[test]
    fn rect_mapping_preserves_membership(
        s in coords(),
        d in coords(),
        (x0, y0, w, h) in (-20i32..20, -20i32..20, 0i32..10, 0i32..10),
    ) {
        let r = Rect::new(x0, x0 + w, y0, y0 + h);
        let f = Frame::normalizing(s, d);
        let rel = f.rect_to_rel(&r);
        prop_assert_eq!(rel.node_count(), r.node_count());
        for c in r.iter() {
            prop_assert!(rel.contains(f.to_rel(c)));
        }
    }

    #[test]
    fn quadrants_partition_the_plane(s in coords(), d in coords()) {
        let q = Quadrant::of(s, d);
        let delta = d - s;
        prop_assert_eq!(delta.x >= 0, q.x_positive());
        prop_assert_eq!(delta.y >= 0, q.y_positive());
    }

    #[test]
    fn monotone_walks_are_minimal(
        s in coords(),
        steps in proptest::collection::vec(proptest::bool::ANY, 0..40),
    ) {
        // Any walk using only E/N moves is a minimal path to its endpoint.
        let mut path = Path::singleton(s);
        let mut cur = s;
        for step_east in steps {
            cur = cur.step(if step_east { Direction::East } else { Direction::North });
            path.push(cur);
        }
        prop_assert!(path.is_minimal());
        prop_assert!(path.is_simple());
    }

    #[test]
    fn rect_iteration_matches_contains(
        (x0, y0, w, h) in (-10i32..10, -10i32..10, 0i32..8, 0i32..8),
        p in coords(),
    ) {
        let r = Rect::new(x0, x0 + w, y0, y0 + h);
        let listed: Vec<Coord> = r.iter().collect();
        prop_assert_eq!(listed.len(), r.node_count());
        prop_assert_eq!(listed.contains(&p), r.contains(p));
    }

    #[test]
    fn mesh_neighbor_symmetry(n in 2i32..12, x in 0i32..12, y in 0i32..12) {
        let mesh = Mesh::square(n);
        let c = Coord::new(x.min(n - 1), y.min(n - 1));
        for v in mesh.neighbors(c) {
            // Neighborhood is symmetric.
            prop_assert!(mesh.neighbors(v).any(|w| w == c));
            prop_assert_eq!(c.manhattan(v), 1);
        }
    }
}
