//! Property-based tests for the geometric substrate.

use proptest::prelude::*;

use emr_mesh::{Coord, Direction, Frame, Mesh, Path, Quadrant, Rect};

fn coords() -> impl Strategy<Value = Coord> {
    (-50i32..50, -50i32..50).prop_map(|(x, y)| Coord::new(x, y))
}

/// Reflection of `c` through the mesh's vertical (`fx`) and/or horizontal
/// (`fy`) center line — the metamorphic transform used by the conformance
/// harness's mirror oracle.
fn mirror(mesh: &Mesh, c: Coord, fx: bool, fy: bool) -> Coord {
    Coord::new(
        if fx { mesh.width() - 1 - c.x } else { c.x },
        if fy { mesh.height() - 1 - c.y } else { c.y },
    )
}

proptest! {
    #[test]
    fn manhattan_is_a_metric(a in coords(), b in coords(), c in coords()) {
        prop_assert_eq!(a.manhattan(b), b.manhattan(a));
        prop_assert_eq!(a.manhattan(a), 0);
        // Triangle inequality.
        prop_assert!(a.manhattan(c) <= a.manhattan(b) + b.manhattan(c));
    }

    #[test]
    fn frame_roundtrips_everywhere(s in coords(), d in coords(), p in coords()) {
        let f = Frame::normalizing(s, d);
        prop_assert_eq!(f.to_abs(f.to_rel(p)), p);
        prop_assert_eq!(f.to_rel(f.to_abs(p)), p);
        // Distances are preserved.
        prop_assert_eq!(f.to_rel(p).manhattan(f.to_rel(s)), p.manhattan(s));
    }

    #[test]
    fn frame_normalizes_destination(s in coords(), d in coords()) {
        let f = Frame::normalizing(s, d);
        let rd = f.to_rel(d);
        prop_assert!(rd.x >= 0 && rd.y >= 0);
        prop_assert_eq!(f.to_rel(s), Coord::ORIGIN);
    }

    #[test]
    fn frame_direction_mapping_is_coherent(s in coords(), d in coords(), p in coords()) {
        let f = Frame::normalizing(s, d);
        for dir in Direction::ALL {
            let abs = f.dir_to_abs(dir);
            // One absolute step in `abs` is one relative step in `dir`.
            prop_assert_eq!(f.to_rel(p.step(abs)), f.to_rel(p).step(dir));
            prop_assert_eq!(f.dir_to_rel(abs), dir);
        }
    }

    #[test]
    fn rect_mapping_preserves_membership(
        s in coords(),
        d in coords(),
        (x0, y0, w, h) in (-20i32..20, -20i32..20, 0i32..10, 0i32..10),
    ) {
        let r = Rect::new(x0, x0 + w, y0, y0 + h);
        let f = Frame::normalizing(s, d);
        let rel = f.rect_to_rel(&r);
        prop_assert_eq!(rel.node_count(), r.node_count());
        for c in r.iter() {
            prop_assert!(rel.contains(f.to_rel(c)));
        }
    }

    #[test]
    fn quadrants_partition_the_plane(s in coords(), d in coords()) {
        let q = Quadrant::of(s, d);
        let delta = d - s;
        prop_assert_eq!(delta.x >= 0, q.x_positive());
        prop_assert_eq!(delta.y >= 0, q.y_positive());
    }

    #[test]
    fn monotone_walks_are_minimal(
        s in coords(),
        steps in proptest::collection::vec(proptest::bool::ANY, 0..40),
    ) {
        // Any walk using only E/N moves is a minimal path to its endpoint.
        let mut path = Path::singleton(s);
        let mut cur = s;
        for step_east in steps {
            cur = cur.step(if step_east { Direction::East } else { Direction::North });
            path.push(cur);
        }
        prop_assert!(path.is_minimal());
        prop_assert!(path.is_simple());
    }

    #[test]
    fn rect_iteration_matches_contains(
        (x0, y0, w, h) in (-10i32..10, -10i32..10, 0i32..8, 0i32..8),
        p in coords(),
    ) {
        let r = Rect::new(x0, x0 + w, y0, y0 + h);
        let listed: Vec<Coord> = r.iter().collect();
        prop_assert_eq!(listed.len(), r.node_count());
        prop_assert_eq!(listed.contains(&p), r.contains(p));
    }

    #[test]
    fn mesh_mirrorings_are_involutions(
        n in 2i32..14,
        x in 0i32..14,
        y in 0i32..14,
        p in coords(),
    ) {
        let mesh = Mesh::square(n);
        let c = Coord::new(x.min(n - 1), y.min(n - 1));
        for (fx, fy) in [(true, false), (false, true), (true, true)] {
            let m = mirror(&mesh, c, fx, fy);
            prop_assert!(mesh.contains(m));
            prop_assert_eq!(mirror(&mesh, m, fx, fy), c);
            // Mirroring is an isometry of the Manhattan metric.
            prop_assert_eq!(
                mirror(&mesh, c, fx, fy).manhattan(mirror(&mesh, Coord::new(
                    p.x.rem_euclid(n),
                    p.y.rem_euclid(n)
                ), fx, fy)),
                c.manhattan(Coord::new(p.x.rem_euclid(n), p.y.rem_euclid(n)))
            );
        }
    }

    /// Off the axes, mirroring maps quadrants exactly as the geometry says:
    /// an x-flip swaps I with II and III with IV (flipping the MCC type), a
    /// y-flip swaps I with IV and II with III (also flipping the type), and
    /// the point reflection preserves the type.
    #[test]
    fn strict_quadrants_mirror_faithfully(n in 3i32..14, s in coords(), d in coords()) {
        let mesh = Mesh::square(n);
        let s = Coord::new(s.x.rem_euclid(n), s.y.rem_euclid(n));
        let d = Coord::new(d.x.rem_euclid(n), d.y.rem_euclid(n));
        prop_assume!(s.x != d.x && s.y != d.y);
        let q = Quadrant::of(s, d);
        for (fx, fy) in [(true, false), (false, true), (true, true)] {
            let mq = Quadrant::of(mirror(&mesh, s, fx, fy), mirror(&mesh, d, fx, fy));
            prop_assert_eq!(mq.x_positive(), q.x_positive() ^ fx);
            prop_assert_eq!(mq.y_positive(), q.y_positive() ^ fy);
            let type_flips = fx ^ fy;
            prop_assert_eq!(mq.is_type_one(), q.is_type_one() ^ type_flips);
        }
    }

    #[test]
    fn mesh_neighbor_symmetry(n in 2i32..12, x in 0i32..12, y in 0i32..12) {
        let mesh = Mesh::square(n);
        let c = Coord::new(x.min(n - 1), y.min(n - 1));
        for v in mesh.neighbors(c) {
            // Neighborhood is symmetric.
            prop_assert!(mesh.neighbors(v).any(|w| w == c));
            prop_assert_eq!(c.manhattan(v), 1);
        }
    }
}

/// On the quadrant boundary the fold convention is *chiral*: an axis-aligned
/// pair folds onto the same MCC labeling type in both mirror orientations,
/// while the faithful mirror of a type-one check would be a type-two check.
/// Pinned here because the conformance harness's mirror oracle must scope
/// MCC comparisons to `|dx| >= 2 && |dy| >= 2` for exactly this reason; if
/// this test starts failing the convention changed and that scope should be
/// revisited.
#[test]
fn axis_aligned_quadrant_fold_is_chiral() {
    let mesh = Mesh::square(11);
    let s = Coord::new(5, 2);
    let d = Coord::new(5, 8); // due north: dx = 0 folds into quadrant I
    assert_eq!(Quadrant::of(s, d), Quadrant::I);
    assert!(Quadrant::of(s, d).is_type_one());

    // X-mirror leaves the column fixed, so the folded quadrant — and hence
    // the labeling type — is unchanged, even though a faithful mirror of a
    // type-one route is a type-two route.
    let ms = Coord::new(mesh.width() - 1 - s.x, s.y);
    let md = Coord::new(mesh.width() - 1 - d.x, d.y);
    assert_eq!(Quadrant::of(ms, md), Quadrant::I);
    assert!(
        Quadrant::of(ms, md).is_type_one(),
        "fold is chiral on dx == 0"
    );

    // Off the axis the same mirror flips the type faithfully.
    let d2 = Coord::new(7, 8);
    let md2 = Coord::new(mesh.width() - 1 - d2.x, d2.y);
    assert!(Quadrant::of(s, d2).is_type_one());
    assert!(!Quadrant::of(ms, md2).is_type_one());
}
